package pipeline

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"tcpstall/internal/core"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// sequentialJSON is the reference the parallel pipeline must match:
// one core.Analyze call per flow on a single goroutine, ordered by
// the pipeline's canonical (FlowID, arrival) key.
func sequentialJSON(t *testing.T, flows []*trace.Flow, cfg core.Config) []byte {
	t.Helper()
	type keyed struct {
		idx int
		a   *core.FlowAnalysis
	}
	var ref []keyed
	for i, f := range flows {
		ref = append(ref, keyed{i, core.Analyze(f, cfg)})
	}
	sort.Slice(ref, func(i, j int) bool {
		if ref[i].a.FlowID != ref[j].a.FlowID {
			return ref[i].a.FlowID < ref[j].a.FlowID
		}
		return ref[i].idx < ref[j].idx
	})
	var analyses []*core.FlowAnalysis
	for _, k := range ref {
		analyses = append(analyses, k.a)
	}
	buf, err := core.MarshalAnalyses(analyses)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func flowsOf(results []workload.FlowResult) []*trace.Flow {
	var flows []*trace.Flow
	for _, r := range results {
		if r.Flow != nil {
			flows = append(flows, r.Flow)
		}
	}
	return flows
}

// TestSequentialEquivalence is the pipeline's core guarantee: for
// every service and every worker count, the parallel pipeline's JSON
// report is byte-identical to the sequential analysis of the same
// flows.
func TestSequentialEquivalence(t *testing.T) {
	services := []struct {
		svc   workload.Service
		flows int
	}{
		{workload.CloudStorage(), 5},
		{workload.SoftwareDownload(), 8},
		{workload.WebSearch(), 14},
	}
	cfg := core.DefaultConfig()
	for _, sc := range services {
		sc := sc
		t.Run(sc.svc.Name, func(t *testing.T) {
			flows := flowsOf(workload.Generate(sc.svc, 20141222, workload.GenOptions{Flows: sc.flows}))
			if len(flows) == 0 {
				t.Fatal("no flows generated")
			}
			want := sequentialJSON(t, flows, cfg)
			for _, workers := range []int{1, 2, 4, 8} {
				res, err := Run(FromFlows(flows), Options{Workers: workers, Config: cfg})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got, err := res.MarshalJSON()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: pipeline JSON differs from sequential (%d vs %d bytes)",
						workers, len(got), len(want))
				}
			}
		})
	}
}

// TestPipelineDeterminism re-runs the same parallel configuration and
// demands bit-identical output: completion order must never leak into
// the merged result.
func TestPipelineDeterminism(t *testing.T) {
	flows := flowsOf(workload.Generate(workload.WebSearch(), 7, workload.GenOptions{Flows: 16}))
	var first []byte
	for run := 0; run < 3; run++ {
		res, err := Run(FromFlows(flows), Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = got
		} else if !bytes.Equal(got, first) {
			t.Fatalf("run %d produced different bytes", run)
		}
	}
}

// TestPipelineRaceGuard is the tier-1 concurrency guard: a tiny
// end-to-end pipeline per worker count, running as parallel subtests
// so `go test -race ./...` exercises the pool under contention — a
// data race fails the ordinary test run, not just the benchmarks.
func TestPipelineRaceGuard(t *testing.T) {
	flows := flowsOf(workload.Generate(workload.WebSearch(), 99, workload.GenOptions{Flows: 10}))
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	want := sequentialJSON(t, flows, core.DefaultConfig())
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			res, err := Run(FromFlows(flows), Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d: output differs from sequential", workers)
			}
			if res.Report.Flows != len(flows) {
				t.Errorf("report covers %d flows, want %d", res.Report.Flows, len(flows))
			}
		})
	}
}

// TestMergedReportMatchesNewReport checks the associative merge of
// per-worker reports equals a single-pass aggregation.
func TestMergedReportMatchesNewReport(t *testing.T) {
	flows := flowsOf(workload.Generate(workload.SoftwareDownload(), 3, workload.GenOptions{Flows: 8}))
	res, err := Run(FromFlows(flows), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := core.NewReport(res.Analyses)
	got := res.Report
	if got.Flows != want.Flows || got.FlowsStalled != want.FlowsStalled ||
		got.TotalStalls != want.TotalStalls || got.TotalStallTime != want.TotalStallTime ||
		got.FlowsZeroRwnd != want.FlowsZeroRwnd {
		t.Errorf("merged report totals differ: got %+v want %+v", got, want)
	}
	for c, n := range want.CountByCause {
		if got.CountByCause[c] != n {
			t.Errorf("cause %v count = %d, want %d", c, got.CountByCause[c], n)
		}
	}
	for c, d := range want.RetransTimeByCause {
		if got.RetransTimeByCause[c] != d {
			t.Errorf("retrans cause %v time = %v, want %v", c, got.RetransTimeByCause[c], d)
		}
	}
	if res.StallDurationsMS.Len() != want.TotalStalls {
		t.Errorf("stall duration sample has %d entries, want %d",
			res.StallDurationsMS.Len(), want.TotalStalls)
	}
}

// TestPipelineFromPcapMatchesBatchImport round-trips generated flows
// through a pcap capture and checks the streaming source produces the
// same merged analyses as the batch importer.
func TestPipelineFromPcapMatchesBatchImport(t *testing.T) {
	flows := flowsOf(workload.Generate(workload.WebSearch(), 21, workload.GenOptions{Flows: 8}))
	var buf bytes.Buffer
	if err := trace.ExportPcap(&buf, flows, trace.ExportConfig{}); err != nil {
		t.Fatal(err)
	}
	pcapBytes := buf.Bytes()

	imported, err := trace.ImportPcap(bytes.NewReader(pcapBytes), trace.ImportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(imported) != len(flows) {
		t.Fatalf("imported %d flows, want %d", len(imported), len(flows))
	}
	want := sequentialJSON(t, imported, core.DefaultConfig())

	for _, workers := range []int{1, 4} {
		res, err := Run(FromPcap(bytes.NewReader(pcapBytes), trace.ImportConfig{}), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: streaming pcap analysis differs from batch import", workers)
		}
	}
}

// TestRunPropagatesSourceError checks a failing source aborts the run
// and surfaces its error.
func TestRunPropagatesSourceError(t *testing.T) {
	boom := errors.New("boom")
	src := func(yield func(*trace.Flow) error) error {
		if err := yield(&trace.Flow{ID: "one"}); err != nil {
			return err
		}
		return boom
	}
	if _, err := Run(src, Options{Workers: 2}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestRunEmptySource checks the zero-flow edge.
func TestRunEmptySource(t *testing.T) {
	res, err := Run(FromFlows(nil), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Analyses) != 0 || res.Report.Flows != 0 {
		t.Errorf("empty source produced %d analyses", len(res.Analyses))
	}
}
