// Package pipeline runs TAPO flow analysis on a bounded worker pool:
// a source streams flows in as they become available (from a pcap
// being read, a generated workload, or an in-memory slice), workers
// run the pure core.Analyze concurrently, and the results merge
// deterministically — ordered by flow key, never by completion time —
// so the parallel pipeline is bit-identical to a sequential pass over
// the same flows no matter how many workers run or how the scheduler
// interleaves them.
//
// This batch pipeline and the online monitor (internal/live) are two
// drivers of the same analysis: core.Analyze is implemented as
// core.NewIncremental + Feed every record + Flush, so analyzing a
// completed flow here produces byte-identical output to streaming the
// same records through the live monitor and evicting the flow. Use
// this package for offline captures, internal/live (cmd/tapod) for
// traffic still in flight.
package pipeline

import (
	"io"
	"runtime"
	"sort"
	"sync"

	"tcpstall/internal/core"
	"tcpstall/internal/stats"
	"tcpstall/internal/trace"
	"tcpstall/internal/workload"
)

// Source streams flows into the pipeline, calling yield once per
// flow. A yield error aborts the source, which must return it.
type Source func(yield func(*trace.Flow) error) error

// FromFlows streams an in-memory slice. Nil entries are skipped.
func FromFlows(flows []*trace.Flow) Source {
	return func(yield func(*trace.Flow) error) error {
		for _, f := range flows {
			if f == nil {
				continue
			}
			if err := yield(f); err != nil {
				return err
			}
		}
		return nil
	}
}

// FromResults streams the flows of a generated workload, skipping
// results whose trace collection was disabled.
func FromResults(results []workload.FlowResult) Source {
	return func(yield func(*trace.Flow) error) error {
		for _, r := range results {
			if r.Flow == nil {
				continue
			}
			if err := yield(r.Flow); err != nil {
				return err
			}
		}
		return nil
	}
}

// FromPcap streams a capture, handing each flow to the workers as
// soon as the demuxer completes it — analysis overlaps the file read
// instead of waiting for one giant slice.
func FromPcap(r io.Reader, cfg trace.ImportConfig) Source {
	return func(yield func(*trace.Flow) error) error {
		return trace.ImportPcapStream(r, cfg, trace.FlowHandler(yield))
	}
}

// batchSize is how many flows ride one channel handoff. Big enough
// to amortize send/wakeup costs over cheap flows, small enough that a
// capture with a few hundred connections still spreads across the
// pool.
const batchSize = 32

// Options tunes a pipeline run.
type Options struct {
	// Workers bounds the analysis pool; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Config parameterizes core.Analyze (zero value: defaults).
	Config core.Config
}

// Result is the merged output of a pipeline run.
type Result struct {
	// Analyses is ordered by (FlowID, arrival index) — a total order
	// independent of worker count and scheduling.
	Analyses []*core.FlowAnalysis
	// Report is the per-worker reports merged associatively; it equals
	// core.NewReport(Analyses).
	Report *core.Report
	// StallDurationsMS collects every stall's duration, merged from
	// the ordered analyses.
	StallDurationsMS *stats.Sample
}

// Run streams flows from src through the worker pool and merges the
// results deterministically.
func Run(src Source, opt Options) (*Result, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Flows move through the pool in small batches: one channel
	// handoff per batchSize analyses, so cheap flows (a web-search
	// page is a few microseconds of analysis) don't drown in
	// per-send scheduling overhead.
	type batch struct {
		base  int // arrival index of flows[0]
		flows []*trace.Flow
	}
	type done struct {
		idx int
		a   *core.FlowAnalysis
	}

	jobs := make(chan batch, 2*workers)
	out := make(chan []done, 2*workers)

	reports := make([]*core.Report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rep := core.NewReport(nil)
			for b := range jobs {
				ds := make([]done, 0, len(b.flows))
				for i, f := range b.flows {
					a := core.Analyze(f, opt.Config)
					rep.Add(a)
					ds = append(ds, done{b.base + i, a})
				}
				out <- ds
			}
			reports[w] = rep
		}(w)
	}

	var srcErr error
	go func() {
		defer close(jobs)
		idx := 0
		pending := batch{base: 0}
		srcErr = src(func(f *trace.Flow) error {
			pending.flows = append(pending.flows, f)
			idx++
			if len(pending.flows) >= batchSize {
				jobs <- pending
				pending = batch{base: idx}
			}
			return nil
		})
		if len(pending.flows) > 0 {
			jobs <- pending
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	var results []done
	for ds := range out {
		results = append(results, ds...)
	}
	// The out channel closed after every worker exited, which in turn
	// happened after the producer wrote srcErr and closed jobs — the
	// read below is ordered after the write.
	if srcErr != nil {
		return nil, srcErr
	}

	// Deterministic merge: flow key first, arrival order as the
	// tie-break for duplicate IDs.
	sort.Slice(results, func(i, j int) bool {
		if results[i].a.FlowID != results[j].a.FlowID {
			return results[i].a.FlowID < results[j].a.FlowID
		}
		return results[i].idx < results[j].idx
	})

	res := &Result{
		Report:           core.NewReport(nil),
		StallDurationsMS: stats.NewSample(len(results)),
	}
	for w := 0; w < workers; w++ {
		if reports[w] != nil {
			res.Report.Merge(reports[w])
		}
	}
	perFlow := stats.NewSample(0)
	for _, d := range results {
		res.Analyses = append(res.Analyses, d.a)
		perFlow.Reset()
		for _, st := range d.a.Stalls {
			perFlow.Add(st.Duration.Seconds() * 1000)
		}
		res.StallDurationsMS.Merge(perFlow)
	}
	return res, nil
}

// MarshalJSON renders the merged analyses as the canonical report
// (see core.MarshalAnalyses): byte-identical across runs and worker
// counts.
func (r *Result) MarshalJSON() ([]byte, error) {
	return core.MarshalAnalyses(r.Analyses)
}
