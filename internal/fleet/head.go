package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcpstall/internal/live"
	"tcpstall/internal/stats"
)

// DefaultExpiry is how long a member may go silent before the head
// retires its epoch. Three missed pushes at the default interval is
// loss; twelve is a dead host.
const DefaultExpiry = 60 * time.Second

// HeadConfig configures a Head.
type HeadConfig struct {
	// Expiry overrides DefaultExpiry when positive.
	Expiry time.Duration
	// Clock overrides time.Now — injected by tests so expiry is
	// deterministic.
	Clock func() time.Time
	// SeriesStep and SeriesBuckets override the time-series ring
	// geometry (DefaultSeriesStep / DefaultSeriesBuckets) when positive.
	SeriesStep    time.Duration
	SeriesBuckets int
	// EventRing overrides DefaultEventRing when positive.
	EventRing int
}

// Head is the fleet control plane: it assigns epochs, ingests member
// snapshots, merges them into fleet-wide totals, and hands config
// down. One Head serves many members; all methods are safe for
// concurrent use.
type Head struct {
	clock  func() time.Time
	expiry time.Duration

	// snapBytes counts wire bytes of accepted snapshots (fed by the
	// HTTP handler; atomic so the hot path skips the head lock).
	snapBytes atomic.Uint64

	mu sync.Mutex
	// members holds every member ever registered. guarded by mu
	members map[string]*memberState
	// lastEpoch is the epoch counter; registration hands out
	// lastEpoch+1. guarded by mu
	lastEpoch uint64
	// compacted is the running fold of every retired epoch whose
	// position in the epoch-order fold can no longer change — epochs
	// below every live member's. Folding them once keeps head memory
	// and per-push merge cost bounded by live cardinality instead of
	// epochs-ever-retired. guarded by mu
	compacted *aggState
	// retired holds dead epochs not yet folded into compacted: those
	// whose epoch is still above some live member's, so folding them
	// now would break the epoch-order fold. guarded by mu
	retired []Snapshot
	// config is the current downlink, nil until SetConfig. guarded by mu
	config *ConfigUpdate
	// mergeLat samples the totals-rebuild latency per accepted push,
	// in milliseconds. guarded by mu
	mergeLat *stats.Sample
	// counters is the head's own accounting. guarded by mu
	counters headCounters
	// series holds the per-interval delta rings fed by accepted
	// pushes. guarded by mu
	series *seriesStore
	// events is the merged event ring. It has its own mutex, strictly
	// below mu in lock order (Head methods publish while holding mu).
	events *eventRing
}

// headCounters is the head's protocol accounting. Owned by the Head;
// guarded by its mu.
type headCounters struct {
	registrations uint64
	restarts      uint64
	expiries      uint64
	pushes        uint64 // accepted
	finals        uint64
	rejects       map[string]uint64 // by PushResponse error code

	// stallEvents counts digest events ingested into the event ring;
	// digestDropped sums the members' own reported digest overflow;
	// digestTruncated counts events the head cut past MaxDigestEvents.
	stallEvents     uint64
	digestDropped   uint64
	digestTruncated uint64
}

// memberState is one member's registration record. Single-owner:
// every field is guarded by Head.mu — memberState pointers never
// escape the Head methods that look them up under the lock.
type memberState struct {
	id            string
	epoch         uint64
	lastSeq       uint64
	lastSeen      time.Time
	configVersion uint64
	last          *Snapshot // latest accepted snapshot; nil once retired
	done          bool      // epoch over: final push received or expired
	final         bool
	expired       bool
	restarts      uint64
}

// NewHead builds a Head.
func NewHead(cfg HeadConfig) *Head {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Expiry <= 0 {
		cfg.Expiry = DefaultExpiry
	}
	return &Head{
		clock:     cfg.Clock,
		expiry:    cfg.Expiry,
		members:   map[string]*memberState{},
		compacted: newAggState(),
		mergeLat:  stats.NewSample(0),
		counters:  headCounters{rejects: map[string]uint64{}},
		series:    newSeriesStore(cfg.SeriesStep, cfg.SeriesBuckets),
		events:    newEventRing(cfg.EventRing),
	}
}

// Register assigns the member a fresh epoch. Re-registering an
// existing member retires its previous epoch first — the protocol's
// restart semantics — so the old incarnation's last snapshot is
// frozen into the totals and any of its still-in-flight pushes will
// be rejected as stale.
func (h *Head) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.MemberID == "" {
		return RegisterResponse{}, fmt.Errorf("fleet: register with empty member_id")
	}
	if req.Version != WireVersion {
		return RegisterResponse{}, fmt.Errorf("fleet: member %s speaks wire v%d, head speaks v%d", req.MemberID, req.Version, WireVersion)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.clock()
	h.sweepLocked(now)
	ms := h.members[req.MemberID]
	if ms == nil {
		ms = &memberState{id: req.MemberID}
		h.members[req.MemberID] = ms
		h.publishLocked(Event{Type: EventMemberJoin, Member: req.MemberID})
	} else {
		h.retireLocked(ms)
		ms.restarts++
		h.counters.restarts++
		h.publishLocked(Event{
			Type: EventMemberRestart, Member: req.MemberID,
			Detail: fmt.Sprintf("epoch %d retired", ms.epoch),
		})
	}
	h.lastEpoch++
	ms.epoch = h.lastEpoch
	ms.lastSeq = 0
	ms.lastSeen = now
	ms.done = false
	ms.final = false
	ms.expired = false
	ms.configVersion = 0
	h.counters.registrations++
	h.compactLocked()
	resp := RegisterResponse{Epoch: ms.epoch}
	if h.config != nil {
		resp.Config = h.configCopyLocked()
	}
	return resp, nil
}

// Push ingests one member snapshot. Accepted snapshots REPLACE the
// member's previous one (cumulative counters), so duplicates and
// losses never skew totals; rejected pushes report why. The response
// doubles as the config downlink when the head holds a newer config
// than the member reports applied.
func (h *Head) Push(snap *Snapshot) PushResponse {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.clock()
	h.sweepLocked(now)
	if snap == nil || snap.Version != WireVersion || snap.MemberID == "" {
		return h.rejectLocked(ErrBadSnapshot)
	}
	ms := h.members[snap.MemberID]
	if ms == nil {
		return h.rejectLocked(ErrUnknownMember)
	}
	if snap.Epoch != ms.epoch || ms.done {
		return h.rejectLocked(ErrStaleEpoch)
	}
	if snap.Seq <= ms.lastSeq {
		return h.rejectLocked(ErrDuplicateSeq)
	}
	cp := *snap
	// Validate the payload BEFORE committing anything: dry-run the
	// totals fold with this snapshot standing in for the member's
	// current one. A payload the fold rejects (histogram layout drift,
	// corrupt summary) leaves head state untouched — the member's
	// previous good snapshot keeps contributing, its seq stays where it
	// was, and a Final flag cannot retire garbage into the compacted
	// totals. The fold is also the per-push merge cost fleetbench
	// gates, so it runs under the clock.
	start := time.Now()
	_, err := h.foldLocked(ms, &cp)
	h.mergeLat.Add(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		return h.rejectLocked(ErrBadSnapshot)
	}
	// Accepted: difference against the member's previous snapshot of
	// THIS epoch (nil right after register/retire, so an epoch restart
	// rebases the delta to zero) and fold into the time-series rings,
	// then let the new cumulative snapshot replace the old.
	h.series.fold(now, ms.last, &cp)
	h.ingestDigestLocked(&cp)
	if snap.ConfigVersion != ms.configVersion && snap.ConfigVersion > 0 {
		h.publishLocked(Event{
			Type: EventConfigApplied, Member: snap.MemberID,
			Detail: fmt.Sprintf("config v%d", snap.ConfigVersion),
		})
	}
	ms.last = &cp
	ms.lastSeq = snap.Seq
	ms.lastSeen = now
	ms.configVersion = snap.ConfigVersion
	h.counters.pushes++
	if snap.Final {
		ms.done = true
		ms.final = true
		h.retireLocked(ms)
		h.counters.finals++
		h.compactLocked()
		h.publishLocked(Event{
			Type: EventMemberFinal, Member: snap.MemberID,
			Detail: fmt.Sprintf("epoch %d settled", snap.Epoch),
		})
	}
	resp := PushResponse{OK: true}
	if h.config != nil && h.config.Version > snap.ConfigVersion {
		resp.Config = h.configCopyLocked()
	}
	return resp
}

// rejectLocked counts and shapes one push rejection. The first
// rejection of each code is an event, then every rejectSpikeEvery-th
// after — a storm surfaces in the stream without flooding it.
func (h *Head) rejectLocked(code string) PushResponse {
	h.counters.rejects[code]++
	if n := h.counters.rejects[code]; n == 1 || n%rejectSpikeEvery == 0 {
		h.publishLocked(Event{
			Type:   EventRejectSpike,
			Detail: fmt.Sprintf("%s x%d", code, n),
		})
	}
	return PushResponse{OK: false, Error: code}
}

// retireLocked freezes a member's last snapshot into the retired
// totals. Idempotent: the snapshot moves out of the live set as it is
// retired, so a final push followed by expiry (or re-registration)
// cannot double-count.
func (h *Head) retireLocked(ms *memberState) {
	if ms.last != nil {
		h.retired = append(h.retired, *ms.last)
		ms.last = nil
	}
}

// sweepLocked retires every live member that has gone silent past the
// expiry window.
func (h *Head) sweepLocked(now time.Time) {
	swept := false
	for _, ms := range h.members {
		if !ms.done && now.Sub(ms.lastSeen) > h.expiry {
			ms.done = true
			ms.expired = true
			h.retireLocked(ms)
			h.counters.expiries++
			h.publishLocked(Event{
				Type: EventMemberExpired, Member: ms.id,
				Detail: fmt.Sprintf("epoch %d silent %.0fs", ms.epoch, now.Sub(ms.lastSeen).Seconds()),
			})
			swept = true
		}
	}
	if swept {
		h.compactLocked()
	}
}

// compactLocked folds every retired epoch that can no longer be
// reordered against a live one — epoch below every live member's —
// into the compacted running total. Because the compacted prefix is
// always below everything still pending, the continued fold is the
// same left fold (same order, same bits) as a from-scratch Aggregate
// over every epoch: totals never depend on when compaction ran.
func (h *Head) compactLocked() {
	if len(h.retired) == 0 {
		return
	}
	threshold := h.lastEpoch + 1
	for _, ms := range h.members {
		if !ms.done && ms.epoch < threshold {
			threshold = ms.epoch
		}
	}
	sort.Slice(h.retired, func(i, j int) bool { return h.retired[i].Epoch < h.retired[j].Epoch })
	n := 0
	for n < len(h.retired) && h.retired[n].Epoch < threshold {
		n++
	}
	if n == 0 {
		return
	}
	// Fold into a clone and swap on success: every retired snapshot
	// already passed full-fold validation at push time, so a failure
	// here should be impossible — but if one happens, keeping the
	// epochs uncompacted beats poisoning the running total.
	next := h.compacted.clone()
	for i := 0; i < n; i++ {
		if err := next.add(&h.retired[i]); err != nil {
			return
		}
	}
	h.compacted = next
	h.retired = append(h.retired[:0], h.retired[n:]...)
}

// totalsLocked merges the compacted prefix, uncompacted retired
// epochs, and every live member's latest snapshot, in epoch order
// (see Aggregate).
func (h *Head) totalsLocked() (Totals, error) {
	return h.foldLocked(nil, nil)
}

// foldLocked computes fleet totals, optionally substituting candidate
// for member skip's latest snapshot — Push's dry run: what totals
// WOULD be if the candidate were accepted, touching no state.
func (h *Head) foldLocked(skip *memberState, candidate *Snapshot) (Totals, error) {
	snaps := make([]Snapshot, 0, len(h.retired)+len(h.members)+1)
	snaps = append(snaps, h.retired...)
	for _, ms := range h.members {
		if ms == skip {
			continue
		}
		if ms.last != nil {
			snaps = append(snaps, *ms.last)
		}
	}
	if candidate != nil {
		snaps = append(snaps, *candidate)
	}
	sort.SliceStable(snaps, func(i, j int) bool { return snaps[i].Epoch < snaps[j].Epoch })
	a := h.compacted.clone()
	for i := range snaps {
		if err := a.add(&snaps[i]); err != nil {
			return Totals{}, err
		}
	}
	return a.finish(), nil
}

func (h *Head) configCopyLocked() *ConfigUpdate {
	cp := ConfigUpdate{Version: h.config.Version, Settings: map[string]any{}}
	for k, v := range h.config.Settings {
		cp.Settings[k] = v
	}
	return &cp
}

// Totals returns the fleet-wide cumulative totals.
func (h *Head) Totals() (Totals, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sweepLocked(h.clock())
	return h.totalsLocked()
}

// WindowTotals is the fleet's rolling-window view: live members only,
// since a retired epoch has nothing recent to say.
type WindowTotals struct {
	SpanS   float64        `json:"window_span_s"`
	Members int            `json:"members"`
	Stalls  []StallCounter `json:"stalls,omitempty"`
}

// Window sums the rolling windows of the live members.
func (h *Head) Window() WindowTotals {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sweepLocked(h.clock())
	var snaps []Snapshot
	for _, ms := range h.members {
		if ms.last != nil {
			snaps = append(snaps, *ms.last)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Epoch < snaps[j].Epoch })
	out := WindowTotals{Members: len(snaps)}
	acc := map[StallKey]*StallCounter{}
	for i := range snaps {
		s := &snaps[i]
		if s.WindowSpanS > out.SpanS {
			out.SpanS = s.WindowSpanS
		}
		for _, sc := range s.WindowStalls {
			k := StallKey{Service: sc.Service, Cause: sc.Cause}
			cell := acc[k]
			if cell == nil {
				cell = &StallCounter{Service: sc.Service, Cause: sc.Cause}
				acc[k] = cell
			}
			cell.Count += sc.Count
			cell.Seconds += sc.Seconds
		}
	}
	for _, cell := range acc {
		out.Stalls = append(out.Stalls, *cell)
	}
	sortStalls(out.Stalls)
	return out
}

// StallKey is the composite (service, cause) map key.
type StallKey struct {
	Service string
	Cause   string
}

// MemberInfo is one row of the /fleet/members view.
type MemberInfo struct {
	ID            string  `json:"id"`
	Epoch         uint64  `json:"epoch"`
	LastSeq       uint64  `json:"last_seq"`
	AgeS          float64 `json:"age_s"`
	Live          bool    `json:"live"`
	Final         bool    `json:"final,omitempty"`
	Expired       bool    `json:"expired,omitempty"`
	Restarts      uint64  `json:"restarts,omitempty"`
	ConfigVersion uint64  `json:"config_version"`
	ActiveFlows   int     `json:"active_flows"`
	Ingested      uint64  `json:"records_ingested"`
}

// Members lists every known member, live and dead, sorted by ID.
func (h *Head) Members() []MemberInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.clock()
	h.sweepLocked(now)
	out := make([]MemberInfo, 0, len(h.members))
	for _, ms := range h.members {
		mi := MemberInfo{
			ID:            ms.id,
			Epoch:         ms.epoch,
			LastSeq:       ms.lastSeq,
			AgeS:          now.Sub(ms.lastSeen).Seconds(),
			Live:          !ms.done,
			Final:         ms.final,
			Expired:       ms.expired,
			Restarts:      ms.restarts,
			ConfigVersion: ms.configVersion,
		}
		if ms.last != nil {
			mi.ActiveFlows = ms.last.ActiveFlows
			mi.Ingested = ms.last.Ingested
		}
		out = append(out, mi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetConfig merges the given settings into the downlink config and
// bumps its version; members pick it up on their next push. Returns
// the new version.
func (h *Head) SetConfig(settings map[string]any) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.config == nil {
		h.config = &ConfigUpdate{Settings: map[string]any{}}
	}
	for k, v := range settings {
		h.config.Settings[k] = v
	}
	h.config.Version++
	h.publishLocked(Event{
		Type:   EventConfigSet,
		Detail: fmt.Sprintf("config v%d (%d settings)", h.config.Version, len(h.config.Settings)),
	})
	return h.config.Version
}

// ConfigSnapshot returns a copy of the current downlink config, or
// nil if none has been set.
func (h *Head) ConfigSnapshot() *ConfigUpdate {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.config == nil {
		return nil
	}
	return h.configCopyLocked()
}

// AddSnapshotBytes feeds the wire-bytes counter (called by the HTTP
// layer with each accepted snapshot's body size).
func (h *Head) AddSnapshotBytes(n int) { h.snapBytes.Add(uint64(n)) }

// HeadStats is the head's own accounting, for /metrics and fleetbench.
type HeadStats struct {
	Members       int               `json:"members"`
	LiveMembers   int               `json:"live_members"`
	Registrations uint64            `json:"registrations"`
	Restarts      uint64            `json:"restarts"`
	Expiries      uint64            `json:"expiries"`
	Pushes        uint64            `json:"pushes"`
	FinalPushes   uint64            `json:"final_pushes"`
	Rejects       map[string]uint64 `json:"rejects,omitempty"`
	SnapshotBytes uint64            `json:"snapshot_bytes"`
	MergeCount    int               `json:"merge_count"`
	MergeP50MS    float64           `json:"merge_p50_ms"`
	MergeP99MS    float64           `json:"merge_p99_ms"`

	// Event-stream accounting: digest events ingested from pushes, the
	// members' own reported digest overflow, head-side truncation past
	// MaxDigestEvents, total events published (stall + control plane),
	// ring overwrites, live-delivery misses, and open subscriptions.
	StallEvents      uint64 `json:"stall_events"`
	DigestDropped    uint64 `json:"digest_dropped"`
	DigestTruncated  uint64 `json:"digest_truncated"`
	EventsPublished  uint64 `json:"events_published"`
	EventsOverwrote  uint64 `json:"events_overwrote"`
	EventsLagged     uint64 `json:"events_lagged"`
	EventSubscribers int    `json:"event_subscribers"`
	// SeriesDroppedKeys counts time-series folds refused a new keyed
	// ring by the cardinality bound.
	SeriesDroppedKeys uint64 `json:"series_dropped_keys"`
}

// Stats snapshots the head's counters and merge-latency quantiles.
func (h *Head) Stats() HeadStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sweepLocked(h.clock())
	st := HeadStats{
		Members:       len(h.members),
		Registrations: h.counters.registrations,
		Restarts:      h.counters.restarts,
		Expiries:      h.counters.expiries,
		Pushes:        h.counters.pushes,
		FinalPushes:   h.counters.finals,
		SnapshotBytes: h.snapBytes.Load(),
		MergeCount:    h.mergeLat.Len(),

		StallEvents:       h.counters.stallEvents,
		DigestDropped:     h.counters.digestDropped,
		DigestTruncated:   h.counters.digestTruncated,
		SeriesDroppedKeys: h.series.droppedKeys,
	}
	st.EventsPublished, st.EventsOverwrote, st.EventsLagged, st.EventSubscribers = h.events.stats()
	for _, ms := range h.members {
		if !ms.done {
			st.LiveMembers++
		}
	}
	if len(h.counters.rejects) > 0 {
		st.Rejects = map[string]uint64{}
		for k, n := range h.counters.rejects {
			st.Rejects[k] = n
		}
	}
	if h.mergeLat.Len() > 0 {
		st.MergeP50MS = h.mergeLat.Quantile(0.5)
		st.MergeP99MS = h.mergeLat.Quantile(0.99)
	}
	return st
}

// Totals is the fleet-wide cumulative merge: counters only — no
// gauges, no identity, no rolling window — so that the sum of every
// epoch's final snapshot is exactly the head's total, byte for byte.
type Totals struct {
	Epochs                    int               `json:"epochs"`
	Ingested                  uint64            `json:"records_ingested"`
	RingDrops                 uint64            `json:"ring_drops"`
	RecordsFed                uint64            `json:"records_fed"`
	RecordCapDrops            uint64            `json:"record_cap_drops"`
	SampledOut                uint64            `json:"records_sampled_out"`
	FlowsSeen                 uint64            `json:"flows_seen"`
	FlowsEvicted              map[string]uint64 `json:"flows_evicted,omitempty"`
	FlowsTruncated            uint64            `json:"flows_truncated"`
	UnknownConfigKeys         uint64            `json:"unknown_config_keys"`
	TriageFastRecords         uint64            `json:"triage_fast_records"`
	TriagePromotions          map[string]uint64 `json:"triage_promotions,omitempty"`
	TriageRepromotions        uint64            `json:"triage_repromotions"`
	TriageDemotions           uint64            `json:"triage_demotions"`
	TriageTruncatedPromotions uint64            `json:"triage_truncated_promotions"`

	Stalls      []StallCounter       `json:"stalls,omitempty"`
	Retrans     []RetransCounter     `json:"retrans,omitempty"`
	DurationsMS stats.HistogramState `json:"stall_duration_ms"`

	IngestBatchSizes stats.SummaryState `json:"ingest_batch_sizes"`
}

// Aggregate merges snapshots into fleet totals. It is the ONE merge
// implementation: the head's totals go through it (as a fold continued
// from the compacted prefix), and the differential test feeds it the
// members' final reports directly — byte-identical output is the
// contract. Inputs are folded in epoch order (epochs are globally
// unique), so float accumulation order — and therefore the exact bits
// — cannot depend on map iteration or on when the head compacted.
func Aggregate(snaps ...Snapshot) (Totals, error) {
	ordered := make([]Snapshot, len(snaps))
	copy(ordered, snaps)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Epoch < ordered[j].Epoch })
	a := newAggState()
	for i := range ordered {
		if err := a.add(&ordered[i]); err != nil {
			return Totals{}, err
		}
	}
	return a.finish(), nil
}

// aggState is the incremental epoch-order fold behind Aggregate. The
// head keeps one as its compacted-prefix accumulator; continuing a
// fold from a clone produces the same left fold — the same float
// additions in the same order — as refolding every snapshot from
// scratch.
type aggState struct {
	// t accumulates the scalar and map counter fields; the slice and
	// distribution fields are rendered by finish.
	t       Totals
	hist    *stats.Histogram
	batches stats.Summary
	stalls  map[StallKey]*StallCounter
	retrans map[string]*RetransCounter
}

func newAggState() *aggState {
	return &aggState{
		stalls:  map[StallKey]*StallCounter{},
		retrans: map[string]*RetransCounter{},
	}
}

// add folds one snapshot in. On error the state is garbage — callers
// fold into a throwaway clone when they need to survive a failure.
func (a *aggState) add(s *Snapshot) error {
	if s.Version != WireVersion {
		return fmt.Errorf("fleet: aggregate: snapshot from %q speaks wire v%d, want v%d", s.MemberID, s.Version, WireVersion)
	}
	t := &a.t
	t.Epochs++
	t.Ingested += s.Ingested
	t.RingDrops += s.RingDrops
	t.RecordsFed += s.RecordsFed
	t.RecordCapDrops += s.RecordCapDrops
	t.SampledOut += s.SampledOut
	t.FlowsSeen += s.FlowsSeen
	t.FlowsTruncated += s.FlowsTruncated
	t.UnknownConfigKeys += s.UnknownConfigKeys
	t.TriageFastRecords += s.TriageFastRecords
	t.TriageRepromotions += s.TriageRepromotions
	t.TriageDemotions += s.TriageDemotions
	t.TriageTruncatedPromotions += s.TriageTruncatedPromotions
	for k, n := range s.FlowsEvicted {
		if t.FlowsEvicted == nil {
			t.FlowsEvicted = map[string]uint64{}
		}
		t.FlowsEvicted[k] += n
	}
	for k, n := range s.TriagePromotions {
		if t.TriagePromotions == nil {
			t.TriagePromotions = map[string]uint64{}
		}
		t.TriagePromotions[k] += n
	}
	for _, sc := range s.Stalls {
		k := StallKey{Service: sc.Service, Cause: sc.Cause}
		cell := a.stalls[k]
		if cell == nil {
			cell = &StallCounter{Service: sc.Service, Cause: sc.Cause}
			a.stalls[k] = cell
		}
		cell.Count += sc.Count
		cell.Seconds += sc.Seconds
	}
	for _, rc := range s.Retrans {
		cell := a.retrans[rc.Subcause]
		if cell == nil {
			cell = &RetransCounter{Subcause: rc.Subcause}
			a.retrans[rc.Subcause] = cell
		}
		cell.Count += rc.Count
		cell.Seconds += rc.Seconds
	}
	hs, err := stats.HistogramFromState(s.DurationsMS)
	if err != nil {
		return fmt.Errorf("fleet: aggregate: snapshot from %q: %w", s.MemberID, err)
	}
	if a.hist == nil {
		a.hist = hs
	} else {
		if !boundsEqual(a.hist.Bounds(), hs.Bounds()) {
			return fmt.Errorf("fleet: aggregate: snapshot from %q has a different histogram layout", s.MemberID)
		}
		a.hist.Merge(hs)
	}
	bs, err := stats.SummaryFromState(s.IngestBatchSizes)
	if err != nil {
		return fmt.Errorf("fleet: aggregate: snapshot from %q: %w", s.MemberID, err)
	}
	a.batches.Merge(bs)
	return nil
}

// clone deep-copies the accumulator so a continued fold cannot
// disturb the original.
func (a *aggState) clone() *aggState {
	cp := newAggState()
	cp.t = a.t
	cp.t.FlowsEvicted = copyCounts(a.t.FlowsEvicted)
	cp.t.TriagePromotions = copyCounts(a.t.TriagePromotions)
	if a.hist != nil {
		cp.hist = a.hist.Clone()
	}
	cp.batches = a.batches
	for k, v := range a.stalls {
		c := *v
		cp.stalls[k] = &c
	}
	for k, v := range a.retrans {
		c := *v
		cp.retrans[k] = &c
	}
	return cp
}

// finish renders the accumulated fold as Totals. The result shares the
// map fields with a, so finish a clone (or a state about to be
// discarded), never a live accumulator.
func (a *aggState) finish() Totals {
	t := a.t
	for _, cell := range a.stalls {
		t.Stalls = append(t.Stalls, *cell)
	}
	sortStalls(t.Stalls)
	for _, cell := range a.retrans {
		t.Retrans = append(t.Retrans, *cell)
	}
	sort.Slice(t.Retrans, func(i, j int) bool { return t.Retrans[i].Subcause < t.Retrans[j].Subcause })
	hist := a.hist
	if hist == nil {
		hist = stats.NewHistogram(live.DurationBoundsMS)
	}
	t.DurationsMS = hist.State()
	t.IngestBatchSizes = a.batches.State()
	return t
}

func copyCounts(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, n := range m {
		out[k] = n
	}
	return out
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
