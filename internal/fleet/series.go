package fleet

import (
	"time"

	"tcpstall/internal/stats"
)

// The time-series layer: on every accepted push the head differences
// the member's cumulative snapshot against its previous accepted one
// and folds the delta into bounded, step-aligned bucket rings — fleet
// wide, per service, and per member. The rings answer "what is the
// stall rate RIGHT NOW and over the last few minutes" without an
// external scraper, which is the whole point of cumulative wire
// counters: the head can reconstruct rates locally and losslessly.
//
// Differencing is epoch-aware by construction. A member's baseline
// (ms.last) is nil at epoch start — retireLocked clears it on restart,
// expiry, and final push — so the first snapshot of a fresh epoch is
// differenced against zero and a restart's rebase-to-zero folds in as
// the new epoch's own small cumulative, never as a negative delta.
// Within an epoch, cumulative counters only grow (seq-gated replace of
// a monotone counter set), so deltas are non-negative; sub64 and
// subF64 clamp at zero as belt and braces against a malformed payload
// that slipped past fold validation.

// Series geometry defaults. ~10 minutes of 5-second buckets.
const (
	DefaultSeriesStep    = 5 * time.Second
	DefaultSeriesBuckets = 120

	// maxSeriesKeys bounds each keyed ring family (services, members).
	// Past it, new keys fold into the fleet ring only and are counted,
	// so a service-cardinality explosion on one member cannot grow head
	// memory without bound.
	maxSeriesKeys = 256
)

// seriesStore holds every ring. Single-owner: all methods are called
// by Head methods holding the Head mutex.
type seriesStore struct {
	// step and size are fixed at construction; immutable thereafter.
	step time.Duration
	size int

	// fleet is the whole-fleet ring. guarded by Head.mu
	fleet *seriesRing
	// services and members are the keyed ring families, bounded at
	// maxSeriesKeys each. guarded by Head.mu
	services map[string]*seriesRing
	members  map[string]*seriesRing
	// droppedKeys counts folds that wanted a new keyed ring past
	// maxSeriesKeys (their deltas still reach the fleet ring).
	// guarded by Head.mu
	droppedKeys uint64
}

func newSeriesStore(step time.Duration, size int) *seriesStore {
	if step <= 0 {
		step = DefaultSeriesStep
	}
	if size <= 0 {
		size = DefaultSeriesBuckets
	}
	return &seriesStore{
		step:     step,
		size:     size,
		fleet:    newSeriesRing(size),
		services: map[string]*seriesRing{},
		members:  map[string]*seriesRing{},
	}
}

// seriesRing is one bounded bucket ring, indexed by step epoch the
// same way live's rollWindow is: bucket i holds step epoch e where
// e%len == i, and a bucket whose stored epoch is stale is reset on
// first touch.
type seriesRing struct {
	buckets []seriesBucket
}

func newSeriesRing(size int) *seriesRing {
	return &seriesRing{buckets: make([]seriesBucket, size)}
}

// seriesBucket accumulates one step interval's deltas.
type seriesBucket struct {
	used  bool
	epoch int64

	pushes       uint64
	records      uint64
	recordsFed   uint64
	stalls       uint64
	stallSeconds float64
	causes       map[string]uint64
	// durs holds the interval's stall-duration deltas for quantiles.
	// Only fleet and member rings carry it — the wire histogram is
	// member-level, so per-service duration attribution is impossible.
	durs *stats.Histogram
}

// bucket returns the ring bucket for step epoch ep, resetting it if it
// last held an older interval.
func (r *seriesRing) bucket(ep int64) *seriesBucket {
	b := &r.buckets[ep%int64(len(r.buckets))]
	if !b.used || b.epoch != ep {
		*b = seriesBucket{used: true, epoch: ep}
	}
	return b
}

// snapDelta is the per-push difference of two cumulative snapshots of
// the same member epoch.
type snapDelta struct {
	records    uint64
	recordsFed uint64
	stalls     []StallCounter // per-(service,cause) deltas, non-zero cells only
	durDelta   *stats.Histogram
}

// deltaOf differences cur against prev. prev == nil means "epoch just
// started": the baseline is zero and cur's cumulative state IS the
// delta. All subtractions clamp at zero.
func deltaOf(prev, cur *Snapshot) snapDelta {
	if prev == nil {
		d := snapDelta{
			records:    cur.Ingested,
			recordsFed: cur.RecordsFed,
			stalls:     append([]StallCounter(nil), cur.Stalls...),
		}
		if h, err := stats.HistogramFromState(cur.DurationsMS); err == nil {
			d.durDelta = h
		}
		return d
	}
	d := snapDelta{
		records:    sub64(cur.Ingested, prev.Ingested),
		recordsFed: sub64(cur.RecordsFed, prev.RecordsFed),
	}
	base := make(map[StallKey]StallCounter, len(prev.Stalls))
	for _, sc := range prev.Stalls {
		base[StallKey{Service: sc.Service, Cause: sc.Cause}] = sc
	}
	for _, sc := range cur.Stalls {
		p := base[StallKey{Service: sc.Service, Cause: sc.Cause}]
		dc := sub64(sc.Count, p.Count)
		ds := subF64(sc.Seconds, p.Seconds)
		if dc == 0 && ds == 0 {
			continue
		}
		d.stalls = append(d.stalls, StallCounter{
			Service: sc.Service, Cause: sc.Cause, Count: dc, Seconds: ds,
		})
	}
	d.durDelta = histDelta(prev.DurationsMS, cur.DurationsMS)
	return d
}

// histDelta differences two histogram states bucket by bucket,
// clamping each count at zero. Layout drift (which fold validation
// rejects before any delta is computed) yields nil — no duration
// contribution.
func histDelta(prev, cur stats.HistogramState) *stats.Histogram {
	if len(prev.Bounds) != len(cur.Bounds) || len(prev.Counts) != len(cur.Counts) {
		return nil
	}
	for i := range cur.Bounds {
		if cur.Bounds[i] != prev.Bounds[i] {
			return nil
		}
	}
	d := stats.HistogramState{
		Bounds: cur.Bounds,
		Counts: make([]uint64, len(cur.Counts)),
		Sum:    subF64(cur.Sum, prev.Sum),
	}
	for i := range cur.Counts {
		d.Counts[i] = sub64(cur.Counts[i], prev.Counts[i])
	}
	h, err := stats.HistogramFromState(d)
	if err != nil {
		return nil
	}
	return h
}

func subF64(a, b float64) float64 {
	if a <= b {
		return 0
	}
	return a - b
}

// fold differences cur against prev and folds the delta into the
// fleet, member, and per-service rings at the bucket holding now.
func (ss *seriesStore) fold(now time.Time, prev, cur *Snapshot) {
	d := deltaOf(prev, cur)
	ep := now.UnixNano() / int64(ss.step)

	var stalls uint64
	var stallSecs float64
	for _, sc := range d.stalls {
		stalls += sc.Count
		stallSecs += sc.Seconds
	}

	apply := func(b *seriesBucket, withDurs bool) {
		b.pushes++
		b.records += d.records
		b.recordsFed += d.recordsFed
		b.stalls += stalls
		b.stallSeconds += stallSecs
		for _, sc := range d.stalls {
			if sc.Count == 0 {
				continue
			}
			if b.causes == nil {
				b.causes = map[string]uint64{}
			}
			b.causes[sc.Cause] += sc.Count
		}
		if withDurs && d.durDelta != nil && d.durDelta.N() > 0 {
			if b.durs == nil {
				b.durs = stats.NewHistogram(d.durDelta.Bounds())
			}
			if boundsEqual(b.durs.Bounds(), d.durDelta.Bounds()) {
				b.durs.Merge(d.durDelta)
			}
		}
	}

	apply(ss.fleet.bucket(ep), true)
	if r := ss.ring(ss.members, cur.MemberID); r != nil {
		apply(r.bucket(ep), true)
	}
	for _, svc := range serviceNames(d.stalls) {
		r := ss.ring(ss.services, svc)
		if r == nil {
			continue
		}
		b := r.bucket(ep)
		b.pushes++
		for _, sc := range d.stalls {
			if sc.Service != svc {
				continue
			}
			b.stalls += sc.Count
			b.stallSeconds += sc.Seconds
			if sc.Count > 0 {
				if b.causes == nil {
					b.causes = map[string]uint64{}
				}
				b.causes[sc.Cause] += sc.Count
			}
		}
	}
}

// ring fetches or creates the keyed ring, enforcing the cardinality
// bound.
func (ss *seriesStore) ring(m map[string]*seriesRing, key string) *seriesRing {
	if key == "" {
		return nil
	}
	r := m[key]
	if r == nil {
		if len(m) >= maxSeriesKeys {
			ss.droppedKeys++
			return nil
		}
		r = newSeriesRing(ss.size)
		m[key] = r
	}
	return r
}

// serviceNames lists the distinct services in a delta's stall cells,
// in first-seen (sorted-input) order.
func serviceNames(stalls []StallCounter) []string {
	var out []string
	for _, sc := range stalls {
		if len(out) == 0 || out[len(out)-1] != sc.Service {
			out = append(out, sc.Service)
		}
	}
	return out
}

// SeriesPoint is one rendered time-series bucket. Counts are the
// interval's deltas; rates divide by the step.
type SeriesPoint struct {
	TimeMS        int64             `json:"time_ms"`
	Pushes        uint64            `json:"pushes"`
	Stalls        uint64            `json:"stalls"`
	StallSeconds  float64           `json:"stall_seconds"`
	Records       uint64            `json:"records,omitempty"`
	RecordsPerSec float64           `json:"records_per_sec,omitempty"`
	Causes        map[string]uint64 `json:"causes,omitempty"`
	DurP50MS      float64           `json:"dur_p50_ms,omitempty"`
	DurP99MS      float64           `json:"dur_p99_ms,omitempty"`
}

// SeriesResponse is the /fleet/timeseries payload.
type SeriesResponse struct {
	StepS       float64                  `json:"step_s"`
	Buckets     int                      `json:"buckets"`
	Fleet       []SeriesPoint            `json:"fleet,omitempty"`
	Services    map[string][]SeriesPoint `json:"services,omitempty"`
	Members     map[string][]SeriesPoint `json:"members,omitempty"`
	DroppedKeys uint64                   `json:"dropped_series_keys,omitempty"`
}

// render lists a ring's live buckets — those whose interval falls
// inside the retained window ending at now — oldest first, skipping
// empty intervals.
func (ss *seriesStore) render(r *seriesRing, now time.Time) []SeriesPoint {
	if r == nil {
		return nil
	}
	cur := now.UnixNano() / int64(ss.step)
	oldest := cur - int64(ss.size) + 1
	var out []SeriesPoint
	for ep := oldest; ep <= cur; ep++ {
		b := &r.buckets[ep%int64(len(r.buckets))]
		if !b.used || b.epoch != ep {
			continue
		}
		p := SeriesPoint{
			TimeMS:       time.Unix(0, b.epoch*int64(ss.step)).UnixMilli(),
			Pushes:       b.pushes,
			Stalls:       b.stalls,
			StallSeconds: b.stallSeconds,
			Records:      b.records,
		}
		if b.records > 0 {
			p.RecordsPerSec = float64(b.records) / ss.step.Seconds()
		}
		if len(b.causes) > 0 {
			p.Causes = make(map[string]uint64, len(b.causes))
			for k, n := range b.causes {
				p.Causes[k] = n
			}
		}
		if b.durs != nil && b.durs.N() > 0 {
			p.DurP50MS = b.durs.Quantile(0.5)
			p.DurP99MS = b.durs.Quantile(0.99)
		}
		out = append(out, p)
	}
	return out
}

// TimeSeries renders the head's rings. service narrows the response to
// one service's ring (fleet and member rings are omitted); empty means
// everything. The boolean reports whether the requested service is
// known — callers turn false into a 400.
func (h *Head) TimeSeries(service string) (SeriesResponse, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.clock()
	h.sweepLocked(now)
	ss := h.series
	resp := SeriesResponse{
		StepS:       ss.step.Seconds(),
		Buckets:     ss.size,
		DroppedKeys: ss.droppedKeys,
	}
	if service != "" {
		r := ss.services[service]
		if r == nil {
			return SeriesResponse{}, false
		}
		resp.Services = map[string][]SeriesPoint{service: ss.render(r, now)}
		return resp, true
	}
	resp.Fleet = ss.render(ss.fleet, now)
	if len(ss.services) > 0 {
		resp.Services = make(map[string][]SeriesPoint, len(ss.services))
		for name, r := range ss.services {
			resp.Services[name] = ss.render(r, now)
		}
	}
	if len(ss.members) > 0 {
		resp.Members = make(map[string][]SeriesPoint, len(ss.members))
		for name, r := range ss.members {
			resp.Members[name] = ss.render(r, now)
		}
	}
	return resp, true
}
