package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tcpstall/internal/live"
	"tcpstall/internal/stats"
	"tcpstall/internal/trace"
)

// DefaultPushInterval is how often a member snapshots and pushes.
const DefaultPushInterval = 5 * time.Second

// MemberConfig configures a Member.
type MemberConfig struct {
	// ID names this member to the head; required, must be stable
	// across restarts of the same host so the head can track
	// incarnations.
	ID string
	// Head is the head's base URL, e.g. "http://head:7077".
	Head string
	// Monitor is the local monitor being exported. Required.
	Monitor *live.Monitor
	// PushInterval overrides DefaultPushInterval when positive.
	PushInterval time.Duration
	// Client overrides the default HTTP client (10s timeout).
	Client *http.Client
}

// Member wires a local live.Monitor to a fleet head: it registers for
// an epoch, pushes cumulative snapshots on a ticker, applies config
// staged from push responses between ingest batches, and optionally
// samples flows down before they reach the monitor.
//
// Protocol methods (Register, Push, Run, Close) serialize on an
// internal mutex; the ingest path (IngestBatch, WrapIngest) never
// takes it.
type Member struct {
	id       string
	head     string
	mon      *live.Monitor
	interval time.Duration
	client   *http.Client

	// pending is the config staged from the last head response,
	// consumed (and applied) at the next ingest batch boundary —
	// config never changes analyzer behavior mid-batch.
	pending atomic.Pointer[ConfigUpdate]
	// cfgVersion is the version of the last APPLIED config.
	cfgVersion atomic.Uint64
	// sampleOneIn keeps 1 flow in N when > 1.
	sampleOneIn atomic.Int64

	sampledOut  atomic.Uint64
	unknownKeys atomic.Uint64
	bytesPushed atomic.Uint64

	batchMu sync.Mutex
	// batches summarizes post-sampling ingest batch sizes. guarded by batchMu
	batches stats.Summary

	mu sync.Mutex
	// epoch is the head-assigned incarnation; 0 = never registered. guarded by mu
	epoch uint64
	// seq is the last sequence number used. guarded by mu
	seq uint64
	// base is the monitor snapshot taken at re-registration: pushes
	// report the monitor's counters relative to it, so a fresh epoch
	// starts from zero and the head never double-counts state the old
	// epoch already retired. Nil for the first epoch. guarded by mu
	base *Snapshot
	// digest accumulates stall events drained from the monitor but not
	// yet delivered by an accepted push — a failed push keeps them, so
	// transient head trouble loses no events; the next accepted push
	// (under its fresh seq) carries them exactly once. Bounded at
	// MaxDigestEvents. guarded by mu
	digest []StallEvent
	// digestDropped counts events past the digest bound since the last
	// delivered push. guarded by mu
	digestDropped uint64
}

// NewMember builds a Member. It does not contact the head until
// Register or Run.
func NewMember(cfg MemberConfig) (*Member, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fleet: member needs an ID")
	}
	if cfg.Head == "" {
		return nil, fmt.Errorf("fleet: member needs a head URL")
	}
	if cfg.Monitor == nil {
		return nil, fmt.Errorf("fleet: member needs a monitor")
	}
	if cfg.PushInterval <= 0 {
		cfg.PushInterval = DefaultPushInterval
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Member{
		id:       cfg.ID,
		head:     cfg.Head,
		mon:      cfg.Monitor,
		interval: cfg.PushInterval,
		client:   cfg.Client,
	}, nil
}

// Register obtains a (fresh) epoch from the head and stages any
// config it hands down.
func (mb *Member) Register(ctx context.Context) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.registerLocked(ctx)
}

func (mb *Member) registerLocked(ctx context.Context) error {
	var resp RegisterResponse
	err := mb.post(ctx, "/fleet/register", RegisterRequest{Version: WireVersion, MemberID: mb.id}, &resp)
	if err != nil {
		return fmt.Errorf("fleet: register: %w", err)
	}
	if resp.Epoch == 0 {
		return fmt.Errorf("fleet: register: head assigned epoch 0")
	}
	if mb.epoch != 0 {
		// Re-registration within the same process: the old epoch's last
		// push already covers the monitor's counters up to now, so
		// rebase this epoch on the current state and reset the
		// member-owned accumulators.
		ls := mb.mon.Snapshot()
		snap := snapshotOf(&ls)
		mb.base = &snap
		mb.sampledOut.Store(0)
		mb.unknownKeys.Store(0)
		mb.batchMu.Lock()
		mb.batches = stats.Summary{}
		mb.batchMu.Unlock()
	}
	mb.epoch = resp.Epoch
	mb.seq = 0
	if resp.Config != nil {
		mb.pending.Store(resp.Config)
	}
	return nil
}

// Push snapshots the monitor and pushes to the head. A stale-epoch or
// unknown-member rejection triggers one re-register and retry, which
// heals head restarts and expiry evictions transparently. Any config
// in the response is staged for the next ingest batch.
func (mb *Member) Push(ctx context.Context) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.pushLocked(ctx, false, true)
}

func (mb *Member) pushLocked(ctx context.Context, final, mayReregister bool) error {
	if mb.epoch == 0 {
		if !mayReregister {
			return fmt.Errorf("fleet: push before register")
		}
		if err := mb.registerLocked(ctx); err != nil {
			return err
		}
	}
	snap := mb.snapshotLocked()
	mb.seq++
	snap.Seq = mb.seq
	snap.Final = final

	body, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("fleet: push: %w", err)
	}
	var resp PushResponse
	if err := mb.postBytes(ctx, "/fleet/push", body, &resp); err != nil {
		return fmt.Errorf("fleet: push: %w", err)
	}
	if !resp.OK {
		if mayReregister && (resp.Error == ErrStaleEpoch || resp.Error == ErrUnknownMember) {
			if err := mb.registerLocked(ctx); err != nil {
				return err
			}
			return mb.pushLocked(ctx, final, false)
		}
		return fmt.Errorf("fleet: push rejected: %s", resp.Error)
	}
	mb.bytesPushed.Add(uint64(len(body)))
	// The head has the digest now; start the next interval empty.
	mb.digest = nil
	mb.digestDropped = 0
	if resp.Config != nil {
		mb.pending.Store(resp.Config)
	}
	return nil
}

// snapshotLocked builds the wire snapshot for the current epoch: the
// monitor's cumulative state rebased on the epoch baseline, plus the
// member-owned counters. Seq/Final are the caller's.
func (mb *Member) snapshotLocked() Snapshot {
	ls := mb.mon.Snapshot()
	snap := snapshotOf(&ls)
	if mb.base != nil {
		subSnapshot(&snap, mb.base)
	}
	snap.MemberID = mb.id
	snap.Epoch = mb.epoch
	snap.ConfigVersion = mb.cfgVersion.Load()
	snap.SampledOut = mb.sampledOut.Load()
	snap.UnknownConfigKeys = mb.unknownKeys.Load()
	mb.batchMu.Lock()
	snap.IngestBatchSizes = mb.batches.State()
	mb.batchMu.Unlock()
	mb.drainDigestLocked()
	snap.Events = mb.digest
	snap.EventsDropped = mb.digestDropped
	return snap
}

// drainDigestLocked moves the monitor's digested stall closes into
// the member's pending event buffer, keeping the first
// MaxDigestEvents and counting the rest — the same first-K sampling
// bound the monitor applies per drain interval.
func (mb *Member) drainDigestLocked() {
	evs, dropped := mb.mon.DrainStallDigest()
	mb.digestDropped += dropped
	for _, e := range evs {
		if len(mb.digest) >= MaxDigestEvents {
			mb.digestDropped++
			continue
		}
		mb.digest = append(mb.digest, StallEvent{
			TimeMS:     e.At.UnixMilli(),
			Service:    e.Stall.Service,
			Cause:      e.Stall.Stall.Cause.String(),
			DurationMS: float64(e.Stall.Stall.Duration) / float64(time.Millisecond),
			FlowHash:   flowHash(e.Stall.FlowID),
		})
	}
}

// Snapshot builds (without pushing) the snapshot the next push would
// carry, minus its sequence number. For tests and local inspection.
func (mb *Member) Snapshot() Snapshot {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.snapshotLocked()
}

// Run registers and then pushes on the configured interval until ctx
// is canceled. Transient push errors are tolerated: cumulative
// snapshots mean the next success heals any gap.
func (mb *Member) Run(ctx context.Context) error {
	if err := mb.Register(ctx); err != nil {
		return err
	}
	tick := time.NewTicker(mb.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			_ = mb.Push(ctx)
		}
	}
}

// Close shuts the monitor down (settling every flow into the
// aggregates) and sends the final push, after which the head retires
// this epoch. The member can register again afterwards.
func (mb *Member) Close(ctx context.Context) error {
	mb.mon.Close()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.pushLocked(ctx, true, true)
}

// IngestBatch applies any staged config, samples the batch, and feeds
// it to the monitor, blocking until the records are queued.
func (mb *Member) IngestBatch(evs []trace.RecordEvent) {
	mb.WrapIngest(func(kept []trace.RecordEvent) { mb.mon.IngestBatchWait(kept) })(evs)
}

// WrapIngest decorates a monitor ingest function with the member's
// batch-boundary duties: apply staged config first, then flow
// sampling, then batch-size accounting.
func (mb *Member) WrapIngest(fn func([]trace.RecordEvent)) func([]trace.RecordEvent) {
	return func(evs []trace.RecordEvent) {
		mb.applyPending()
		kept := mb.sampleBatch(evs)
		mb.batchMu.Lock()
		mb.batches.Add(float64(len(kept)))
		mb.batchMu.Unlock()
		fn(kept)
	}
}

// applyPending applies the staged config update, if any. Known keys
// map onto the monitor's runtime knobs; unknown keys — and known keys
// with values of the wrong shape — are counted and skipped, so a
// newer head never breaks an older member.
func (mb *Member) applyPending() {
	cu := mb.pending.Swap(nil)
	if cu == nil {
		return
	}
	for k, v := range cu.Settings {
		ok := false
		switch k {
		case SettingSampleOneIn:
			var n int
			if n, ok = asInt(v); ok {
				// Values the uint32 flow hash cannot spread over are
				// rejected like malformed ones: a negative N is
				// meaningless, and anything above 2^32-1 would sample
				// out essentially everything (or, as a multiple of
				// 2^32, truncate to a zero modulus).
				if n < 0 || int64(n) > math.MaxUint32 {
					ok = false
				} else {
					mb.sampleOneIn.Store(int64(n))
				}
			}
		case SettingMaxRecordsPerFlow:
			var n int
			if n, ok = asInt(v); ok {
				mb.mon.SetMaxRecordsPerFlow(n)
			}
		case SettingTriage:
			var on bool
			if on, ok = asBool(v); ok {
				ok = mb.mon.SetTriageEnabled(on)
			}
		case SettingFlight:
			var on bool
			if on, ok = asBool(v); ok {
				ok = mb.mon.SetFlightEnabled(on)
			}
		}
		if !ok {
			mb.unknownKeys.Add(1)
		}
	}
	mb.cfgVersion.Store(cu.Version)
}

// WrapIngestEvent is WrapIngest for per-event sources (pcap replay,
// live streaming): staged config applies between events, and sampling
// stays flow-granular through the hash. Batch-size accounting is
// skipped — a stream has no batches to summarize.
func (mb *Member) WrapIngestEvent(fn func(trace.RecordEvent) bool) func(trace.RecordEvent) bool {
	return func(ev trace.RecordEvent) bool {
		if mb.pending.Load() != nil {
			mb.applyPending()
		}
		if n := mb.sampleOneIn.Load(); n > 1 && uint64(flowHash(ev.FlowID))%uint64(n) != 0 {
			mb.sampledOut.Add(1)
			return true
		}
		return fn(ev)
	}
}

// sampleBatch drops flows hashed out by the sample_one_in setting.
// Sampling is flow-granular — every record of a flow shares its fate —
// so kept flows are still analyzed whole.
func (mb *Member) sampleBatch(evs []trace.RecordEvent) []trace.RecordEvent {
	n := mb.sampleOneIn.Load()
	if n <= 1 {
		return evs
	}
	kept := evs[:0:len(evs)]
	dropped := uint64(0)
	for _, ev := range evs {
		if uint64(flowHash(ev.FlowID))%uint64(n) == 0 {
			kept = append(kept, ev)
		} else {
			dropped++
		}
	}
	if dropped > 0 {
		mb.sampledOut.Add(dropped)
	}
	return kept
}

// flowHash is FNV-1a over the flow ID, allocation-free (the sampler
// sits on the ingest hot path).
func flowHash(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}

// MemberStats is the member's own accounting, for tests and tapod's
// report.
type MemberStats struct {
	Epoch             uint64 `json:"epoch"`
	Seq               uint64 `json:"seq"`
	ConfigVersion     uint64 `json:"config_version"`
	SampledOut        uint64 `json:"records_sampled_out"`
	UnknownConfigKeys uint64 `json:"unknown_config_keys"`
	BytesPushed       uint64 `json:"bytes_pushed"`
}

// Stats snapshots the member's counters.
func (mb *Member) Stats() MemberStats {
	mb.mu.Lock()
	epoch, seq := mb.epoch, mb.seq
	mb.mu.Unlock()
	return MemberStats{
		Epoch:             epoch,
		Seq:               seq,
		ConfigVersion:     mb.cfgVersion.Load(),
		SampledOut:        mb.sampledOut.Load(),
		UnknownConfigKeys: mb.unknownKeys.Load(),
		BytesPushed:       mb.bytesPushed.Load(),
	}
}

// post marshals req and decodes the response into out.
func (mb *Member) post(ctx context.Context, path string, req any, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return mb.postBytes(ctx, path, body, out)
}

func (mb *Member) postBytes(ctx context.Context, path string, body []byte, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, mb.head+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := mb.client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return err
	}
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", hresp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

// subSnapshot rebases snap on base: every monitor-derived cumulative
// counter becomes "since base". Gauges and the rolling window pass
// through untouched, and member-owned counters are reset (not
// subtracted) at re-registration, so they are not handled here.
func subSnapshot(snap, base *Snapshot) {
	snap.Ingested = sub64(snap.Ingested, base.Ingested)
	snap.RingDrops = sub64(snap.RingDrops, base.RingDrops)
	snap.RecordsFed = sub64(snap.RecordsFed, base.RecordsFed)
	snap.RecordCapDrops = sub64(snap.RecordCapDrops, base.RecordCapDrops)
	snap.FlowsSeen = sub64(snap.FlowsSeen, base.FlowsSeen)
	snap.FlowsTruncated = sub64(snap.FlowsTruncated, base.FlowsTruncated)
	snap.TriageFastRecords = sub64(snap.TriageFastRecords, base.TriageFastRecords)
	snap.TriageRepromotions = sub64(snap.TriageRepromotions, base.TriageRepromotions)
	snap.TriageDemotions = sub64(snap.TriageDemotions, base.TriageDemotions)
	snap.TriageTruncatedPromotions = sub64(snap.TriageTruncatedPromotions, base.TriageTruncatedPromotions)
	snap.FlowsEvicted = subMap(snap.FlowsEvicted, base.FlowsEvicted)
	snap.TriagePromotions = subMap(snap.TriagePromotions, base.TriagePromotions)
	snap.Stalls = subStalls(snap.Stalls, base.Stalls)
	snap.Retrans = subRetrans(snap.Retrans, base.Retrans)
	if boundsEqual(snap.DurationsMS.Bounds, base.DurationsMS.Bounds) {
		for i := range snap.DurationsMS.Counts {
			snap.DurationsMS.Counts[i] = sub64(snap.DurationsMS.Counts[i], base.DurationsMS.Counts[i])
		}
		snap.DurationsMS.Sum -= base.DurationsMS.Sum
	}
}

// sub64 subtracts with a floor at zero: the minuend is cumulative and
// monotone, so a would-be underflow means a bug upstream, and a zero
// beats poisoning fleet totals with a wrapped uint64.
func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func subMap(cur, base map[string]uint64) map[string]uint64 {
	if len(cur) == 0 {
		return nil
	}
	out := map[string]uint64{}
	for k, n := range cur {
		if d := sub64(n, base[k]); d > 0 {
			out[k] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func subStalls(cur, base []StallCounter) []StallCounter {
	if len(cur) == 0 {
		return nil
	}
	prev := map[StallKey]StallCounter{}
	for _, sc := range base {
		prev[StallKey{Service: sc.Service, Cause: sc.Cause}] = sc
	}
	var out []StallCounter
	for _, sc := range cur {
		b := prev[StallKey{Service: sc.Service, Cause: sc.Cause}]
		sc.Count = sub64(sc.Count, b.Count)
		sc.Seconds -= b.Seconds
		if sc.Count > 0 || sc.Seconds != 0 {
			out = append(out, sc)
		}
	}
	return out
}

func subRetrans(cur, base []RetransCounter) []RetransCounter {
	if len(cur) == 0 {
		return nil
	}
	prev := map[string]RetransCounter{}
	for _, rc := range base {
		prev[rc.Subcause] = rc
	}
	var out []RetransCounter
	for _, rc := range cur {
		b := prev[rc.Subcause]
		rc.Count = sub64(rc.Count, b.Count)
		rc.Seconds -= b.Seconds
		if rc.Count > 0 || rc.Seconds != 0 {
			out = append(out, rc)
		}
	}
	return out
}

// asInt accepts the integer shapes a JSON decode can produce.
func asInt(v any) (int, bool) {
	switch x := v.(type) {
	case float64:
		if x == math.Trunc(x) {
			return int(x), true
		}
	case int:
		return x, true
	case int64:
		return int(x), true
	}
	return 0, false
}

// asBool accepts booleans and their common string spellings ("on",
// "off", …), since tapoctl config presets arrive as strings.
func asBool(v any) (bool, bool) {
	switch x := v.(type) {
	case bool:
		return x, true
	case string:
		switch x {
		case "on", "true", "1":
			return true, true
		case "off", "false", "0":
			return false, true
		}
	}
	return false, false
}
