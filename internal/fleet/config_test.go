package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcpstall/internal/live"
	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// cfgEvents builds n outgoing data records spread across the given
// flows — plain healthy traffic, enough to admit flows and advance
// analyzers.
func cfgEvents(prefix string, flows, perFlow int) []trace.RecordEvent {
	var evs []trace.RecordEvent
	for f := 0; f < flows; f++ {
		id := fmt.Sprintf("%s-%d", prefix, f)
		for i := 0; i < perFlow; i++ {
			evs = append(evs, trace.RecordEvent{
				FlowID:  id,
				Service: "cfgsvc",
				MSS:     1460,
				Rec: trace.Record{
					T:   sim.Time(time.Duration(i) * 10 * time.Millisecond),
					Dir: tcpsim.DirOut,
					Seg: tcpsim.Segment{
						Seq:   uint32(1 + i*100),
						Len:   100,
						Wnd:   65535,
						Flags: packet.FlagACK | packet.FlagPSH,
					},
				},
			})
		}
	}
	return evs
}

// TestConfigPushAppliedBetweenBatches is the config downlink
// round-trip: the head changes triage mode and the per-flow record
// cap, the member applies the update at its next ingest-batch
// boundary (not mid-batch), the monitor's /config admin plane
// reflects the new values, the unknown key is ignored with a counter
// bump, and the next push reports the applied version back to the
// head.
func TestConfigPushAppliedBetweenBatches(t *testing.T) {
	ctx := context.Background()
	head := NewHead(HeadConfig{})
	headSrv := httptest.NewServer(NewHandler(head))
	defer headSrv.Close()

	mon := newTestMonitor()
	defer mon.Close()
	monSrv := httptest.NewServer(live.NewHandler(mon))
	defer monSrv.Close()

	mb, err := NewMember(MemberConfig{ID: "cfg-m", Head: headSrv.URL, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Register(ctx); err != nil {
		t.Fatal(err)
	}
	mb.IngestBatch(cfgEvents("warm", 2, 5))
	if err := mb.Push(ctx); err != nil {
		t.Fatal(err)
	}

	ver := head.SetConfig(map[string]any{
		SettingTriage:            "off",
		SettingMaxRecordsPerFlow: 5,
		"unknown_knob":           42,
	})

	// The downlink rides the next push response — staged, not applied:
	// nothing may change until a batch boundary.
	if err := mb.Push(ctx); err != nil {
		t.Fatal(err)
	}
	if !mon.TriageEnabled() || mon.MaxRecordsPerFlow() == 5 {
		t.Fatal("config applied before an ingest batch boundary")
	}
	if got := mb.Stats().ConfigVersion; got != 0 {
		t.Fatalf("config version reported before apply: %d", got)
	}

	// The next batch applies it first, then ingests under the new
	// settings.
	mb.IngestBatch(cfgEvents("post", 2, 12))
	if mon.TriageEnabled() {
		t.Error("triage still enabled after applying triage=off")
	}
	if got := mon.MaxRecordsPerFlow(); got != 5 {
		t.Errorf("max_records_per_flow = %d, want 5", got)
	}
	st := mb.Stats()
	if st.UnknownConfigKeys != 1 {
		t.Errorf("unknown config keys = %d, want 1 (unknown_knob)", st.UnknownConfigKeys)
	}
	if st.ConfigVersion != ver {
		t.Errorf("applied config version = %d, want %d", st.ConfigVersion, ver)
	}

	// The monitor's own admin plane tells the same story.
	resp, err := http.Get(monSrv.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cfg struct {
		Runtime struct {
			MaxRecordsPerFlow int  `json:"max_records_per_flow"`
			TriageEnabled     bool `json:"triage_enabled"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Runtime.MaxRecordsPerFlow != 5 || cfg.Runtime.TriageEnabled {
		t.Errorf("/config runtime = %+v, want cap 5 and triage off", cfg.Runtime)
	}

	// The head learns the member converged from its next push.
	if err := mb.Push(ctx); err != nil {
		t.Fatal(err)
	}
	members := head.Members()
	if len(members) != 1 || members[0].ConfigVersion != ver {
		t.Errorf("members = %+v, want cfg-m at config version %d", members, ver)
	}
	// And the fleet totals surface the unknown-key bump.
	tot, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if tot.UnknownConfigKeys != 1 {
		t.Errorf("fleet unknown_config_keys = %d, want 1", tot.UnknownConfigKeys)
	}
}

// TestConfigSampling drives the flow-granular sampler: with
// sample_one_in=4, roughly a quarter of flows survive, every record
// of a surviving flow survives with it, and the rest are counted out.
func TestConfigSampling(t *testing.T) {
	ctx := context.Background()
	head := NewHead(HeadConfig{})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()

	mon := newTestMonitor()
	defer mon.Close()
	mb, err := NewMember(MemberConfig{ID: "samp-m", Head: srv.URL, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	head.SetConfig(map[string]any{SettingSampleOneIn: 4})
	// Registration already carries the config downlink.
	if err := mb.Register(ctx); err != nil {
		t.Fatal(err)
	}

	const flows, perFlow = 64, 10
	mb.IngestBatch(cfgEvents("s", flows, perFlow))
	st := mb.Stats()
	if st.SampledOut == 0 {
		t.Fatal("no records sampled out at sample_one_in=4")
	}
	if st.SampledOut%perFlow != 0 {
		t.Errorf("sampled-out count %d is not flow-granular (flows of %d records)", st.SampledOut, perFlow)
	}
	kept := uint64(flows*perFlow) - st.SampledOut
	ms := mon.Snapshot()
	if ms.Ingested != kept {
		t.Errorf("monitor ingested %d, want %d (post-sampling)", ms.Ingested, kept)
	}
	if kept == 0 || kept == flows*perFlow {
		t.Errorf("sampling kept %d of %d records — expected a strict subset", kept, flows*perFlow)
	}
	// The push reports the member-level sampling counter to the head.
	if err := mb.Push(ctx); err != nil {
		t.Fatal(err)
	}
	tot, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if tot.SampledOut != st.SampledOut {
		t.Errorf("fleet sampled_out = %d, want %d", tot.SampledOut, st.SampledOut)
	}

	// Turning sampling back off restores full intake.
	head.SetConfig(map[string]any{SettingSampleOneIn: 1})
	if err := mb.Push(ctx); err != nil {
		t.Fatal(err)
	}
	beforeIn := mon.Snapshot().Ingested
	mb.IngestBatch(cfgEvents("t", 8, 3))
	if got := mon.Snapshot().Ingested - beforeIn; got != 24 {
		t.Errorf("post-reset batch ingested %d records, want all 24", got)
	}
}

// TestConfigSamplingRejectsUnrepresentable is the regression test for
// the sample_one_in downlink: 2^32 passes the n>1 hot-path guard but
// truncates to a zero uint32 modulus, so the old ingest path panicked
// with an integer divide by zero — remotely triggerable via config
// push. Out-of-range values must be rejected like malformed ones
// (counted, not applied), and the largest representable N must sample
// without panicking on both the batch and per-event paths.
func TestConfigSamplingRejectsUnrepresentable(t *testing.T) {
	ctx := context.Background()
	head := NewHead(HeadConfig{})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()

	mon := newTestMonitor()
	defer mon.Close()
	mb, err := NewMember(MemberConfig{ID: "ovf-m", Head: srv.URL, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	head.SetConfig(map[string]any{SettingSampleOneIn: float64(1 << 32)})
	if err := mb.Register(ctx); err != nil {
		t.Fatal(err)
	}
	mb.IngestBatch(cfgEvents("a", 4, 3)) // panicked before the fix
	st := mb.Stats()
	if st.UnknownConfigKeys != 1 {
		t.Errorf("unknown config keys = %d, want 1 (2^32 sample_one_in rejected)", st.UnknownConfigKeys)
	}
	if st.SampledOut != 0 {
		t.Errorf("sampled out %d records under a rejected setting, want 0", st.SampledOut)
	}
	if got := mon.Snapshot().Ingested; got != 12 {
		t.Errorf("ingested %d, want all 12 (rejected setting must not sample)", got)
	}

	// Negative N is rejected the same way.
	head.SetConfig(map[string]any{SettingSampleOneIn: -2})
	if err := mb.Push(ctx); err != nil {
		t.Fatal(err)
	}
	mb.IngestBatch(cfgEvents("b", 4, 3))
	if st = mb.Stats(); st.UnknownConfigKeys != 2 || st.SampledOut != 0 {
		t.Errorf("after negative N: unknown=%d sampled=%d, want 2/0", st.UnknownConfigKeys, st.SampledOut)
	}

	// The largest representable N applies and samples (nearly)
	// everything out — on the per-event path too — without panicking.
	head.SetConfig(map[string]any{SettingSampleOneIn: float64(math.MaxUint32)})
	if err := mb.Push(ctx); err != nil {
		t.Fatal(err)
	}
	ingest := mb.WrapIngestEvent(func(trace.RecordEvent) bool { return true })
	for _, ev := range cfgEvents("c", 8, 1) {
		ingest(ev)
	}
	st = mb.Stats()
	if st.UnknownConfigKeys != 2 {
		t.Errorf("max-uint32 sample_one_in miscounted as unknown: %d keys", st.UnknownConfigKeys)
	}
	if st.SampledOut == 0 {
		t.Error("sample_one_in=2^32-1 sampled nothing out of 8 flows")
	}
}
