package fleet

import (
	"sync"
)

// The event layer: member stall digests and the head's own
// control-plane happenings merge into one bounded ring with monotonic
// IDs, readable two ways — a JSON backlog fetch (?since=) and a live
// SSE stream. The ring is the source of truth; subscribers are
// best-effort fan-out on top of it, so a slow SSE client loses
// liveness, never history (it can always re-fetch by ID).

// Event types, as they appear in Event.Type.
const (
	EventStall         = "stall"          // one member stall close, from a push digest
	EventMemberJoin    = "member_join"    // first registration of a member ID
	EventMemberRestart = "member_restart" // re-registration: old epoch retired
	EventMemberExpired = "member_expired" // member went silent past expiry
	EventMemberFinal   = "member_final"   // member's final push retired its epoch
	EventConfigSet     = "config_set"     // operator set a new config version
	EventConfigApplied = "config_applied" // member reported a config version applied
	EventRejectSpike   = "reject_spike"   // push rejections crossed a milestone
)

// DefaultEventRing is how many events the head retains. At the default
// digest and push cadence this is minutes of history — enough for a
// dashboard to backfill on load and for tapoctl tail to reconnect
// without a gap.
const DefaultEventRing = 1024

// rejectSpikeEvery is the rejection-count milestone cadence: the first
// rejection of each code is an event, then every rejectSpikeEvery-th
// after, so a storm surfaces without flooding the ring.
const rejectSpikeEvery = 100

// Event is one entry in the head's merged event stream.
type Event struct {
	// ID is monotonically increasing across the head's lifetime;
	// ?since=ID and SSE Last-Event-ID resume after it.
	ID     uint64 `json:"id"`
	TimeMS int64  `json:"time_ms"`
	Type   string `json:"type"`
	Member string `json:"member,omitempty"`
	// Stall fields, set when Type == EventStall.
	Service    string  `json:"service,omitempty"`
	Cause      string  `json:"cause,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	FlowHash   uint32  `json:"flow_hash,omitempty"`
	// Detail is the human-readable tail: epoch for lifecycle events,
	// version for config events, code and count for reject spikes.
	Detail string `json:"detail,omitempty"`
}

// EventsResponse is the /fleet/events payload.
type EventsResponse struct {
	Events []Event `json:"events"`
	// Next is the ID to pass as ?since= to continue from here.
	Next uint64 `json:"next"`
	// Dropped counts ring overwrites since head start — events that can
	// no longer be fetched by ID.
	Dropped uint64 `json:"dropped,omitempty"`
}

// eventRing is the bounded event store plus subscriber fan-out. It has
// its own mutex, below the Head's in lock order: Head methods publish
// while holding the Head mutex, ring methods never call back into the
// Head.
type eventRing struct {
	mu sync.Mutex
	// buf is the ring storage; ID i (when still retained) lives at
	// (i-1)%cap. guarded by mu
	buf []Event
	// cap is the fixed ring capacity; immutable after construction.
	cap int
	// nextID is the next ID to assign, starting at 1. guarded by mu
	nextID uint64
	// dropped counts overwritten events. guarded by mu
	dropped uint64
	// subs holds live subscriber channels. guarded by mu
	subs map[chan Event]struct{}
	// lagged counts events a subscriber's buffer had no room for.
	// guarded by mu
	lagged uint64

	// closeOnce makes Close idempotent; it is the only writer that
	// ever closes the closed channel.
	closeOnce sync.Once
	// closed broadcasts head shutdown to every stream. The channel
	// reference is immutable after construction; closing it goes
	// through closeOnce, so no mutex is involved.
	closed chan struct{}
}

func newEventRing(capacity int) *eventRing {
	if capacity <= 0 {
		capacity = DefaultEventRing
	}
	return &eventRing{
		buf:    make([]Event, 0, capacity),
		cap:    capacity,
		nextID: 1,
		subs:   map[chan Event]struct{}{},
		closed: make(chan struct{}),
	}
}

// publish assigns the event its ID, stores it, and fans it out to
// subscribers without blocking: a subscriber whose buffer is full
// misses the live delivery (counted) and catches up by ID later.
func (er *eventRing) publish(ev Event) {
	er.mu.Lock()
	defer er.mu.Unlock()
	ev.ID = er.nextID
	er.nextID++
	if len(er.buf) < er.cap {
		er.buf = append(er.buf, ev)
	} else {
		er.buf[(ev.ID-1)%uint64(er.cap)] = ev
		er.dropped++
	}
	for ch := range er.subs {
		select {
		case ch <- ev:
		default:
			er.lagged++
		}
	}
}

// since returns the retained events with ID > after, oldest first, and
// the next cursor.
func (er *eventRing) since(after uint64) EventsResponse {
	er.mu.Lock()
	defer er.mu.Unlock()
	resp := EventsResponse{Events: []Event{}, Next: er.nextID - 1, Dropped: er.dropped}
	n := len(er.buf)
	if n == 0 {
		return resp
	}
	lo := er.nextID - uint64(n) // oldest retained ID
	if after+1 > lo {
		lo = after + 1
	}
	for id := lo; id < er.nextID; id++ {
		resp.Events = append(resp.Events, er.buf[(id-1)%uint64(er.cap)])
	}
	return resp
}

// subscribe registers a live channel, returning it with the backlog
// after `after` and a cancel func. The channel is buffered; the caller
// drains it until cancel (or head close).
func (er *eventRing) subscribe(after uint64) (backlog []Event, ch chan Event, cancel func()) {
	er.mu.Lock()
	defer er.mu.Unlock()
	backlog = er.sinceLocked(after)
	ch = make(chan Event, 64)
	er.subs[ch] = struct{}{}
	return backlog, ch, func() {
		er.mu.Lock()
		defer er.mu.Unlock()
		delete(er.subs, ch)
	}
}

// sinceLocked is since without the response envelope. guarded by mu
// (caller holds it).
func (er *eventRing) sinceLocked(after uint64) []Event {
	n := len(er.buf)
	if n == 0 {
		return nil
	}
	lo := er.nextID - uint64(n)
	if after+1 > lo {
		lo = after + 1
	}
	var out []Event
	for id := lo; id < er.nextID; id++ {
		out = append(out, er.buf[(id-1)%uint64(er.cap)])
	}
	return out
}

// close broadcasts shutdown to every stream. Idempotent.
func (er *eventRing) close() {
	er.closeOnce.Do(func() { close(er.closed) })
}

// Events returns the retained events with ID > since, oldest first.
func (h *Head) Events(since uint64) EventsResponse {
	return h.events.since(since)
}

// Close terminates every live event stream (SSE handlers select on
// the ring's closed channel), so http.Server.Shutdown can finish.
// The head remains usable for non-streaming calls after Close.
func (h *Head) Close() {
	h.events.close()
}

// Sweep runs one expiry sweep now — tapoctl calls it on shutdown so
// members that died during the run are retired (and their expiry
// events published) before the final state is scraped.
func (h *Head) Sweep() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sweepLocked(h.clock())
}

// publishLocked stamps and publishes one control-plane event. Callers
// hold the Head mutex; the ring's own lock nests below it.
func (h *Head) publishLocked(ev Event) {
	if ev.TimeMS == 0 {
		ev.TimeMS = h.clock().UnixMilli()
	}
	h.events.publish(ev)
}

// ingestDigestLocked publishes a push's stall-event digest. The digest
// is bounded member-side at MaxDigestEvents; the head re-truncates and
// counts anyway, because the wire is untrusted.
func (h *Head) ingestDigestLocked(snap *Snapshot) {
	evs := snap.Events
	if len(evs) > MaxDigestEvents {
		h.counters.digestTruncated += uint64(len(evs) - MaxDigestEvents)
		evs = evs[:MaxDigestEvents]
	}
	h.counters.stallEvents += uint64(len(evs))
	h.counters.digestDropped += snap.EventsDropped
	for _, se := range evs {
		h.events.publish(Event{
			TimeMS:     se.TimeMS,
			Type:       EventStall,
			Member:     snap.MemberID,
			Service:    se.Service,
			Cause:      se.Cause,
			DurationMS: se.DurationMS,
			FlowHash:   se.FlowHash,
		})
	}
}

// eventStats reports the ring's fan-out accounting for HeadStats.
func (er *eventRing) stats() (published, dropped, lagged uint64, subscribers int) {
	er.mu.Lock()
	defer er.mu.Unlock()
	return er.nextID - 1, er.dropped, er.lagged, len(er.subs)
}
