package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcpstall/internal/workload"
)

// sumSeries folds a rendered point list into totals for the
// sum-back-to-cumulative checks.
func sumSeries(points []SeriesPoint) (stalls, records uint64, stallSecs float64) {
	for _, p := range points {
		stalls += p.Stalls
		records += p.Records
		stallSecs += p.StallSeconds
	}
	return
}

// TestSeriesDeltaDifferential replays the PR 8 differential scenario —
// a member restart mid-run plus injected duplicate and stale-epoch
// pushes — and pins the time-series contract: every per-interval delta
// is non-negative, rejected pushes never move the rings, and the rings
// sum back to the head's cumulative totals (counts exactly, seconds
// within float epsilon).
func TestSeriesDeltaDifferential(t *testing.T) {
	ctx := context.Background()
	head := NewHead(HeadConfig{})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()

	svcs := workload.Services()

	// Member m0: first incarnation takes the front half, restarts, the
	// second incarnation takes the back half — the rebase-to-zero case.
	ev0 := memberEvents(svcs[0], 101, 4)
	mon0a := newTestMonitor()
	m0a, err := NewMember(MemberConfig{ID: "m0", Head: srv.URL, Monitor: mon0a})
	if err != nil {
		t.Fatal(err)
	}
	if err := m0a.Register(ctx); err != nil {
		t.Fatal(err)
	}
	feedChunks(t, ctx, m0a, ev0[:len(ev0)/2])
	if err := m0a.Push(ctx); err != nil {
		t.Fatal(err)
	}

	// Rejected pushes must leave the rings untouched.
	before, _ := head.TimeSeries("")
	dup := m0a.Snapshot()
	dup.Seq = 1
	if resp := head.Push(&dup); resp.OK {
		t.Fatal("duplicate push accepted")
	}
	stale := m0a.Snapshot()
	stale.Epoch = 9999
	stale.Seq = 99
	if resp := head.Push(&stale); resp.OK {
		t.Fatal("stale push accepted")
	}
	after, _ := head.TimeSeries("")
	if !bytes.Equal(marshal(t, before), marshal(t, after)) {
		t.Fatal("rejected pushes changed the time-series rings")
	}

	if err := m0a.Close(ctx); err != nil {
		t.Fatal(err)
	}
	mon0b := newTestMonitor()
	m0b, err := NewMember(MemberConfig{ID: "m0", Head: srv.URL, Monitor: mon0b})
	if err != nil {
		t.Fatal(err)
	}
	if err := m0b.Register(ctx); err != nil {
		t.Fatal(err)
	}
	feedChunks(t, ctx, m0b, ev0[len(ev0)/2:])

	// Member m1: straight-through replay of a second service.
	mon1 := newTestMonitor()
	m1, err := NewMember(MemberConfig{ID: "m1", Head: srv.URL, Monitor: mon1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Register(ctx); err != nil {
		t.Fatal(err)
	}
	feedChunks(t, ctx, m1, memberEvents(svcs[1%len(svcs)], 202, 4))
	for _, mb := range []*Member{m0b, m1} {
		if err := mb.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}

	totals, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := head.TimeSeries("")
	if !ok {
		t.Fatal("TimeSeries not ok")
	}

	// Non-negativity: counts are unsigned; a clamping bug shows up as an
	// absurd near-2^64 value, and float fields must not dip below zero.
	for _, p := range ts.Fleet {
		if p.Stalls > 1<<40 || p.Records > 1<<40 {
			t.Fatalf("fleet point has underflowed delta: %+v", p)
		}
		if p.StallSeconds < 0 || p.DurP50MS < 0 || p.DurP99MS < 0 {
			t.Fatalf("fleet point has negative field: %+v", p)
		}
	}

	// Sum back to cumulative: the per-interval deltas telescope to each
	// epoch's last snapshot, and the head totals are exactly the sum of
	// those.
	gotStalls, gotRecords, gotSecs := sumSeries(ts.Fleet)
	var wantStalls uint64
	var wantSecs float64
	for _, sc := range totals.Stalls {
		wantStalls += sc.Count
		wantSecs += sc.Seconds
	}
	if wantStalls == 0 {
		t.Fatal("replay produced no stalls; the test is vacuous")
	}
	if gotStalls != wantStalls {
		t.Errorf("fleet ring stalls = %d, cumulative totals = %d", gotStalls, wantStalls)
	}
	if gotRecords != totals.Ingested {
		t.Errorf("fleet ring records = %d, cumulative ingested = %d", gotRecords, totals.Ingested)
	}
	if math.Abs(gotSecs-wantSecs) > 1e-6*(1+wantSecs) {
		t.Errorf("fleet ring stall seconds = %g, cumulative = %g", gotSecs, wantSecs)
	}

	// Per-service rings sum to the per-service cumulative cells.
	wantBySvc := map[string]uint64{}
	for _, sc := range totals.Stalls {
		wantBySvc[sc.Service] += sc.Count
	}
	for svc, points := range ts.Services {
		got, _, _ := sumSeries(points)
		if got != wantBySvc[svc] {
			t.Errorf("service %q ring stalls = %d, cumulative = %d", svc, got, wantBySvc[svc])
		}
	}
	// Per-member rings (m0's two epochs share one ring) sum to the
	// fleet ring.
	var memberStalls uint64
	for _, points := range ts.Members {
		got, _, _ := sumSeries(points)
		memberStalls += got
	}
	if memberStalls != gotStalls {
		t.Errorf("member rings sum to %d stalls, fleet ring has %d", memberStalls, gotStalls)
	}
}

// stallSnap is miniSnap plus explicit stall cells, for deterministic
// delta arithmetic.
func stallSnap(id string, epoch, seq, ingested uint64, count uint64, secs float64) *Snapshot {
	s := miniSnap(id, epoch, seq, ingested)
	s.Stalls = []StallCounter{{Service: "svc", Cause: "rto", Count: count, Seconds: secs}}
	return s
}

// TestSeriesEpochRestartRebase pins the rebase-to-zero rule with exact
// numbers: a restart must fold the new epoch's first cumulative
// snapshot as its own delta — never the (negative) difference against
// the dead epoch's larger counters.
func TestSeriesEpochRestartRebase(t *testing.T) {
	now := time.Unix(10_000, 0)
	head := NewHead(HeadConfig{Clock: func() time.Time { return now }})

	reg, err := head.Register(RegisterRequest{Version: WireVersion, MemberID: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if resp := head.Push(stallSnap("m", reg.Epoch, 1, 1000, 100, 5)); !resp.OK {
		t.Fatalf("push 1: %+v", resp)
	}
	now = now.Add(DefaultSeriesStep)
	if resp := head.Push(stallSnap("m", reg.Epoch, 2, 1200, 120, 6)); !resp.OK {
		t.Fatalf("push 2: %+v", resp)
	}

	// Restart: the new incarnation's counters rebase to (near) zero.
	reg2, err := head.Register(RegisterRequest{Version: WireVersion, MemberID: "m"})
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(DefaultSeriesStep)
	if resp := head.Push(stallSnap("m", reg2.Epoch, 1, 50, 5, 0.5)); !resp.OK {
		t.Fatalf("push 3: %+v", resp)
	}

	ts, ok := head.TimeSeries("")
	if !ok {
		t.Fatal("TimeSeries not ok")
	}
	stalls, records, secs := sumSeries(ts.Fleet)
	// Deltas: 100, 20, then 5 (rebased) — not 5-120 underflowed.
	if stalls != 125 {
		t.Errorf("fleet ring stalls = %d, want 125 (100 + 20 + rebased 5)", stalls)
	}
	if records != 1250 {
		t.Errorf("fleet ring records = %d, want 1250 (1000 + 200 + rebased 50)", records)
	}
	if math.Abs(secs-6.5) > 1e-9 {
		t.Errorf("fleet ring stall seconds = %g, want 6.5", secs)
	}
	// And the cumulative totals agree: epoch 1 retired at (120, 1200),
	// epoch 2 live at (5, 50).
	totals, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if totals.Ingested != 1250 || totals.Stalls[0].Count != 125 {
		t.Errorf("totals = ingested %d stalls %d, want 1250/125", totals.Ingested, totals.Stalls[0].Count)
	}
	// The per-service ring tells the same story.
	svcPoints := ts.Services["svc"]
	svcStalls, _, _ := sumSeries(svcPoints)
	if svcStalls != 125 {
		t.Errorf("service ring stalls = %d, want 125", svcStalls)
	}
}

// TestHandlerHeaders audits every GET endpoint for the content-type
// and cache-control contract: JSON everywhere, no-store everywhere —
// a cached copy of a live view is wrong by definition.
func TestHandlerHeaders(t *testing.T) {
	head := NewHead(HeadConfig{})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()
	defer head.Close()

	cases := []struct {
		path        string
		contentType string
	}{
		{"/fleet/members", "application/json; charset=utf-8"},
		{"/fleet/stalls", "application/json; charset=utf-8"},
		{"/fleet/services", "application/json; charset=utf-8"},
		{"/fleet/stats", "application/json; charset=utf-8"},
		{"/fleet/timeseries", "application/json; charset=utf-8"},
		{"/fleet/events", "application/json; charset=utf-8"},
		{"/fleet/config", "application/json; charset=utf-8"},
		{"/dashboard", "text/html; charset=utf-8"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/healthz", "text/plain; charset=utf-8"},
	}
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.contentType {
			t.Errorf("%s: Content-Type = %q, want %q", tc.path, got, tc.contentType)
		}
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s: Cache-Control = %q, want no-store", tc.path, got)
		}
	}

	// The SSE stream writes its headers up front; cancel the request
	// once they arrive.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/fleet/events/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Errorf("stream: Content-Type = %q, want text/event-stream", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Errorf("stream: Cache-Control = %q, want no-store", got)
	}
	cancel()
	resp.Body.Close()
}

// TestDashboardSelfContained pins the zero-dependency property: the
// embedded page must reference no external URL — no CDN scripts, no
// remote fonts, no analytics — so it renders identically on an
// air-gapped host.
func TestDashboardSelfContained(t *testing.T) {
	head := NewHead(HeadConfig{})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	page := string(body)
	for _, banned := range []string{"http://", "https://", "//cdn", "integrity=", "crossorigin", "@import"} {
		if strings.Contains(page, banned) {
			t.Errorf("dashboard references an external resource: found %q", banned)
		}
	}
	// And it is the real page, wired to the head's own endpoints.
	for _, want := range []string{"/fleet/timeseries", "/fleet/events/stream", "EventSource", "tapoctl"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// TestServiceFilterGuards pins the ?service= contract on /fleet/stalls
// and /fleet/timeseries: a known service narrows the response, an
// unknown one 400s by name, and a bad ?since= on /fleet/events 400s —
// the same typo-surfacing stance as the absurd-?n= guard on tapod.
func TestServiceFilterGuards(t *testing.T) {
	now := time.Unix(10_000, 0)
	head := NewHead(HeadConfig{Clock: func() time.Time { return now }})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()

	reg, err := head.Register(RegisterRequest{Version: WireVersion, MemberID: "m"})
	if err != nil {
		t.Fatal(err)
	}
	snap := miniSnap("m", reg.Epoch, 1, 100)
	snap.Stalls = []StallCounter{
		{Service: "alpha", Cause: "rto", Count: 3, Seconds: 1.5},
		{Service: "beta", Cause: "appstall", Count: 2, Seconds: 0.5},
	}
	if resp := head.Push(snap); !resp.OK {
		t.Fatalf("push: %+v", resp)
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	code, body := get("/fleet/stalls?service=alpha")
	if code != http.StatusOK {
		t.Fatalf("stalls?service=alpha: status %d", code)
	}
	var filtered struct {
		Service string         `json:"service"`
		Stalls  []StallCounter `json:"stalls"`
	}
	if err := json.Unmarshal(body, &filtered); err != nil {
		t.Fatal(err)
	}
	if filtered.Service != "alpha" || len(filtered.Stalls) != 1 || filtered.Stalls[0].Service != "alpha" {
		t.Errorf("filtered stalls = %s", body)
	}
	if code, _ := get("/fleet/stalls?service=nope"); code != http.StatusBadRequest {
		t.Errorf("stalls?service=nope: status %d, want 400", code)
	}

	code, body = get("/fleet/timeseries?service=alpha")
	if code != http.StatusOK {
		t.Fatalf("timeseries?service=alpha: status %d", code)
	}
	var ts SeriesResponse
	if err := json.Unmarshal(body, &ts); err != nil {
		t.Fatal(err)
	}
	if len(ts.Services) != 1 || ts.Services["alpha"] == nil || ts.Fleet != nil {
		t.Errorf("filtered timeseries = %s", body)
	}
	if code, _ := get("/fleet/timeseries?service=nope"); code != http.StatusBadRequest {
		t.Errorf("timeseries?service=nope: status %d, want 400", code)
	}
	if code, _ := get("/fleet/events?since=banana"); code != http.StatusBadRequest {
		t.Errorf("events?since=banana: status %d, want 400", code)
	}
}

// TestEventStreamEndToEnd is the protocol smoke the CI race suite
// runs: a real member feeds real traffic, pushes carry the stall
// digest, and an SSE client must receive a stall event end-to-end —
// then head.Close() must terminate the stream so a graceful server
// shutdown cannot hang on it.
func TestEventStreamEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	head := NewHead(HeadConfig{})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()

	// SSE client first, so it sees events live rather than from the
	// backlog.
	stallCh := make(chan Event, 1)
	streamDone := make(chan error, 1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/fleet/events/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		sent := false
		for sc.Scan() {
			data, ok := strings.CutPrefix(sc.Text(), "data: ")
			if !ok {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				streamDone <- fmt.Errorf("bad SSE payload %q: %w", data, err)
				return
			}
			if ev.Type == EventStall && !sent {
				sent = true
				stallCh <- ev
			}
		}
		streamDone <- sc.Err()
	}()

	mon := newTestMonitor()
	mb, err := NewMember(MemberConfig{ID: "sse-m", Head: srv.URL, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Register(ctx); err != nil {
		t.Fatal(err)
	}
	evs := memberEvents(workload.Services()[0], 77, 4)
	feedChunks(t, ctx, mb, evs)
	if err := mb.Close(ctx); err != nil {
		t.Fatal(err)
	}

	select {
	case ev := <-stallCh:
		if ev.Member != "sse-m" || ev.Cause == "" || ev.ID == 0 {
			t.Errorf("stall event incomplete: %+v", ev)
		}
	case err := <-streamDone:
		t.Fatalf("stream ended before a stall event arrived: %v", err)
	case <-ctx.Done():
		t.Fatal("timed out waiting for a stall event over SSE")
	}

	// The JSON backlog must agree: a join event and stall events are
	// retained and paginate by ID.
	er := head.Events(0)
	if len(er.Events) == 0 {
		t.Fatal("event backlog empty")
	}
	var sawJoin, sawStall, sawFinal bool
	for _, ev := range er.Events {
		switch ev.Type {
		case EventMemberJoin:
			sawJoin = true
		case EventStall:
			sawStall = true
		case EventMemberFinal:
			sawFinal = true
		}
	}
	if !sawJoin || !sawStall || !sawFinal {
		t.Errorf("backlog missing event types: join=%v stall=%v final=%v", sawJoin, sawStall, sawFinal)
	}
	mid := er.Events[len(er.Events)/2].ID
	rest := head.Events(mid)
	if len(rest.Events) == 0 || rest.Events[0].ID != mid+1 {
		t.Errorf("pagination from %d returned %d events starting at %d", mid, len(rest.Events), func() uint64 {
			if len(rest.Events) == 0 {
				return 0
			}
			return rest.Events[0].ID
		}())
	}
	// The digest accounting reached the head's stats.
	if st := head.Stats(); st.StallEvents == 0 || st.EventsPublished == 0 {
		t.Errorf("stats missing event accounting: %+v", st)
	}

	// Close must end the live stream promptly.
	head.Close()
	select {
	case err := <-streamDone:
		if err != nil {
			t.Errorf("stream ended with error after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not terminate after head.Close")
	}
}
