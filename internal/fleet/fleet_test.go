package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcpstall/internal/flight"
	"tcpstall/internal/live"
	"tcpstall/internal/stats"
	"tcpstall/internal/trace"
	"tcpstall/internal/triage"
	"tcpstall/internal/workload"
)

// newTestMonitor builds a monitor in full member trim (triage and
// flight configured, so the head can toggle both).
func newTestMonitor() *live.Monitor {
	m := live.New(live.Config{
		Shards:   2,
		RingSize: 1 << 14,
		Triage:   &triage.Config{},
		Flight:   &flight.Config{},
	})
	m.Start()
	return m
}

// memberEvents renders one member's deterministic replay traffic.
func memberEvents(svc workload.Service, seed int64, flows int) []trace.RecordEvent {
	var evs []trace.RecordEvent
	for _, fr := range workload.Generate(svc, seed, workload.GenOptions{Flows: flows}) {
		f := fr.Flow
		for i := range f.Records {
			evs = append(evs, trace.RecordEvent{
				FlowID:   f.ID,
				Service:  f.Service,
				MSS:      f.MSS,
				InitRwnd: f.InitRwnd,
				Rec:      f.Records[i],
			})
		}
	}
	return evs
}

// feedChunks pushes events through the member ingest path in
// fixed-size batches, with a protocol push every few batches so the
// run exercises mid-stream snapshots.
func feedChunks(t *testing.T, ctx context.Context, mb *Member, evs []trace.RecordEvent) {
	t.Helper()
	const chunk = 512
	for i := 0; i < len(evs); i += chunk {
		end := i + chunk
		if end > len(evs) {
			end = len(evs)
		}
		mb.IngestBatch(evs[i:end])
		if (i/chunk)%4 == 3 {
			if err := mb.Push(ctx); err != nil {
				t.Fatalf("mid-stream push: %v", err)
			}
		}
	}
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestDifferentialReplayByteIdentical is the acceptance differential:
// three members replay deterministic workloads against one head, one
// member restarts mid-run, a delayed duplicate and a stale-epoch push
// are injected — and the head's fleet totals must still be
// byte-identical to Aggregate over the members' final reports.
func TestDifferentialReplayByteIdentical(t *testing.T) {
	ctx := context.Background()
	head := NewHead(HeadConfig{})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()

	svcs := workload.Services()
	var finals []Snapshot

	// Member m0: restarts mid-run. First incarnation takes the front
	// half of the replay.
	ev0 := memberEvents(svcs[0], 101, 4)
	mon0a := newTestMonitor()
	m0a, err := NewMember(MemberConfig{ID: "m0", Head: srv.URL, Monitor: mon0a})
	if err != nil {
		t.Fatal(err)
	}
	if err := m0a.Register(ctx); err != nil {
		t.Fatal(err)
	}
	epoch0a := m0a.Stats().Epoch
	feedChunks(t, ctx, m0a, ev0[:len(ev0)/2])
	if err := m0a.Push(ctx); err != nil {
		t.Fatal(err)
	}

	// Delayed duplicate: replay an already-used sequence number. The
	// head must reject it and totals must not move.
	before, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	dup := m0a.Snapshot()
	dup.Seq = 1
	if resp := head.Push(&dup); resp.OK || resp.Error != ErrDuplicateSeq {
		t.Fatalf("duplicate push: got %+v, want duplicate_seq reject", resp)
	}
	after, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, before), marshal(t, after)) {
		t.Fatal("rejected duplicate push changed fleet totals")
	}

	// Restart: close (final push), then a fresh incarnation — new
	// monitor, same member ID — takes the back half.
	if err := m0a.Close(ctx); err != nil {
		t.Fatalf("close m0a: %v", err)
	}
	finals = append(finals, m0a.Snapshot())

	mon0b := newTestMonitor()
	m0b, err := NewMember(MemberConfig{ID: "m0", Head: srv.URL, Monitor: mon0b})
	if err != nil {
		t.Fatal(err)
	}
	if err := m0b.Register(ctx); err != nil {
		t.Fatal(err)
	}
	if e := m0b.Stats().Epoch; e <= epoch0a {
		t.Fatalf("restart epoch = %d, want > %d", e, epoch0a)
	}
	// Stale-epoch push from the dead incarnation, out of order.
	stale := m0b.Snapshot()
	stale.Epoch = epoch0a
	stale.Seq = 99
	if resp := head.Push(&stale); resp.OK || resp.Error != ErrStaleEpoch {
		t.Fatalf("stale push: got %+v, want stale_epoch reject", resp)
	}
	feedChunks(t, ctx, m0b, ev0[len(ev0)/2:])

	// Members m1, m2: plain straight-through replays.
	rest := []*Member{m0b}
	for i := 1; i <= 2; i++ {
		mon := newTestMonitor()
		mb, err := NewMember(MemberConfig{ID: fmt.Sprintf("m%d", i), Head: srv.URL, Monitor: mon})
		if err != nil {
			t.Fatal(err)
		}
		if err := mb.Register(ctx); err != nil {
			t.Fatal(err)
		}
		feedChunks(t, ctx, mb, memberEvents(svcs[i%len(svcs)], int64(200+i), 4))
		rest = append(rest, mb)
	}
	for _, mb := range rest {
		if err := mb.Close(ctx); err != nil {
			t.Fatalf("close: %v", err)
		}
		finals = append(finals, mb.Snapshot())
	}

	want, err := Aggregate(finals...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	wantJS, gotJS := marshal(t, want), marshal(t, got)
	if !bytes.Equal(wantJS, gotJS) {
		t.Errorf("fleet totals diverged from the sum of final member reports\n head: %s\n sum:  %s", gotJS, wantJS)
	}
	if got.Epochs != 4 {
		t.Errorf("epochs = %d, want 4 (3 members + 1 restart)", got.Epochs)
	}
	if got.Ingested == 0 || got.FlowsSeen == 0 {
		t.Errorf("empty replay: %+v", got)
	}

	st := head.Stats()
	if st.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", st.Restarts)
	}
	if st.FinalPushes != 4 {
		t.Errorf("final pushes = %d, want 4", st.FinalPushes)
	}
	if st.Rejects[ErrDuplicateSeq] != 1 || st.Rejects[ErrStaleEpoch] != 1 {
		t.Errorf("rejects = %v, want one duplicate_seq and one stale_epoch", st.Rejects)
	}
	if st.MergeCount == 0 || st.MergeP99MS <= 0 {
		t.Errorf("merge latency not sampled: %+v", st)
	}
}

// miniSnap builds the smallest valid wire snapshot.
func miniSnap(id string, epoch, seq, ingested uint64) *Snapshot {
	return &Snapshot{
		Version:     WireVersion,
		MemberID:    id,
		Epoch:       epoch,
		Seq:         seq,
		Ingested:    ingested,
		DurationsMS: stats.NewHistogram(live.DurationBoundsMS).State(),
	}
}

// postPush replays a raw push body over HTTP — the transport-level
// out-of-order duplicate.
func postPush(t *testing.T, url string, body []byte) PushResponse {
	t.Helper()
	resp, err := http.Post(url+"/fleet/push", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PushResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestRestartEpochSemantics is the regression test for member restart:
// re-registration yields a strictly fresh epoch, the head discards
// stale-epoch snapshots (including byte-exact replays of old pushes),
// and totals count every epoch exactly once.
func TestRestartEpochSemantics(t *testing.T) {
	head := NewHead(HeadConfig{})
	srv := httptest.NewServer(NewHandler(head))
	defer srv.Close()

	register := func() uint64 {
		body := marshal(t, RegisterRequest{Version: WireVersion, MemberID: "m"})
		resp, err := http.Post(srv.URL+"/fleet/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr RegisterResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return rr.Epoch
	}

	e1 := register()
	push1 := marshal(t, miniSnap("m", e1, 1, 100))
	if pr := postPush(t, srv.URL, push1); !pr.OK {
		t.Fatalf("push 1: %+v", pr)
	}
	if pr := postPush(t, srv.URL, marshal(t, miniSnap("m", e1, 2, 150))); !pr.OK {
		t.Fatalf("push 2: %+v", pr)
	}

	e2 := register()
	if e2 <= e1 {
		t.Fatalf("re-register epoch = %d, want > %d", e2, e1)
	}

	// Out-of-order duplicate from the dead epoch, replayed byte for
	// byte off the wire: must be discarded as stale, not re-counted.
	if pr := postPush(t, srv.URL, push1); pr.OK || pr.Error != ErrStaleEpoch {
		t.Fatalf("stale replay: got %+v, want stale_epoch reject", pr)
	}

	if pr := postPush(t, srv.URL, marshal(t, miniSnap("m", e2, 1, 30))); !pr.OK {
		t.Fatalf("push on fresh epoch: %+v", pr)
	}
	// Duplicate within the live epoch.
	if pr := postPush(t, srv.URL, marshal(t, miniSnap("m", e2, 1, 30))); pr.OK || pr.Error != ErrDuplicateSeq {
		t.Fatalf("duplicate seq: got %+v, want duplicate_seq reject", pr)
	}

	tot, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 contributes its LAST snapshot (150), epoch 2 its own
	// (30); the stale replay of 100 must not resurrect.
	if tot.Ingested != 180 {
		t.Errorf("ingested = %d, want 180 (150 retired + 30 live)", tot.Ingested)
	}
	if tot.Epochs != 2 {
		t.Errorf("epochs = %d, want 2", tot.Epochs)
	}
}

// TestExpiryRetiresSilentMembers drives the stale-member sweep with an
// injected clock.
func TestExpiryRetiresSilentMembers(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	head := NewHead(HeadConfig{
		Expiry: 10 * time.Second,
		Clock:  func() time.Time { return now },
	})

	reg, err := head.Register(RegisterRequest{Version: WireVersion, MemberID: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if resp := head.Push(miniSnap("m", reg.Epoch, 1, 42)); !resp.OK {
		t.Fatalf("push: %+v", resp)
	}

	now = now.Add(11 * time.Second)
	st := head.Stats()
	if st.Expiries != 1 || st.LiveMembers != 0 {
		t.Fatalf("after silence: expiries=%d live=%d, want 1/0", st.Expiries, st.LiveMembers)
	}
	// The expired epoch's state is retained, frozen.
	tot, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Ingested != 42 || tot.Epochs != 1 {
		t.Errorf("retired totals = %+v, want ingested 42 over 1 epoch", tot)
	}
	// A push from the expired epoch is stale; re-registering heals.
	if resp := head.Push(miniSnap("m", reg.Epoch, 2, 50)); resp.OK || resp.Error != ErrStaleEpoch {
		t.Fatalf("push after expiry: %+v, want stale_epoch", resp)
	}
	reg2, err := head.Register(RegisterRequest{Version: WireVersion, MemberID: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if resp := head.Push(miniSnap("m", reg2.Epoch, 1, 8)); !resp.OK {
		t.Fatalf("push after re-register: %+v", resp)
	}
	tot, err = head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Ingested != 50 || tot.Epochs != 2 {
		t.Errorf("healed totals = %+v, want ingested 50 over 2 epochs", tot)
	}
}

// TestPushRejectsBadSnapshots covers the protocol's input validation.
func TestPushRejectsBadSnapshots(t *testing.T) {
	head := NewHead(HeadConfig{})
	if resp := head.Push(miniSnap("ghost", 1, 1, 1)); resp.OK || resp.Error != ErrUnknownMember {
		t.Errorf("unregistered push: %+v, want unknown_member", resp)
	}
	reg, err := head.Register(RegisterRequest{Version: WireVersion, MemberID: "m"})
	if err != nil {
		t.Fatal(err)
	}
	wrongVer := miniSnap("m", reg.Epoch, 1, 1)
	wrongVer.Version = WireVersion + 1
	if resp := head.Push(wrongVer); resp.OK || resp.Error != ErrBadSnapshot {
		t.Errorf("wrong version: %+v, want bad_snapshot", resp)
	}
	// A structurally broken histogram payload fails the merge and is
	// dropped rather than poisoning totals.
	broken := miniSnap("m", reg.Epoch, 1, 1)
	broken.DurationsMS = stats.HistogramState{}
	if resp := head.Push(broken); resp.OK || resp.Error != ErrBadSnapshot {
		t.Errorf("broken histogram: %+v, want bad_snapshot", resp)
	}
	if _, err := head.Totals(); err != nil {
		t.Errorf("totals poisoned by rejected snapshot: %v", err)
	}
	if _, err := head.Register(RegisterRequest{Version: WireVersion + 1, MemberID: "x"}); err == nil {
		t.Error("version-mismatched registration accepted")
	}
	if _, err := head.Register(RegisterRequest{Version: WireVersion}); err == nil {
		t.Error("empty member_id registration accepted")
	}
}

// TestBadFinalPushLeavesHeadStateUnchanged is the regression test for
// a rejected Final push: the head used to retire the snapshot BEFORE
// validating its payload, so one bad final push poisoned h.retired and
// every Totals() call — /fleet/stalls, /fleet/services, /metrics —
// failed forever. A rejected push must leave head state untouched: the
// previous good snapshot keeps contributing, the seq is not burned,
// the epoch stays live, and no accepted-push counters move.
func TestBadFinalPushLeavesHeadStateUnchanged(t *testing.T) {
	head := NewHead(HeadConfig{})
	reg, err := head.Register(RegisterRequest{Version: WireVersion, MemberID: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if resp := head.Push(miniSnap("m", reg.Epoch, 1, 100)); !resp.OK {
		t.Fatalf("good push: %+v", resp)
	}
	before, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}

	bad := miniSnap("m", reg.Epoch, 2, 140)
	bad.Final = true
	bad.DurationsMS = stats.HistogramState{Bounds: []float64{1, 2}} // counts missing
	if resp := head.Push(bad); resp.OK || resp.Error != ErrBadSnapshot {
		t.Fatalf("bad final push: %+v, want bad_snapshot", resp)
	}

	after, err := head.Totals()
	if err != nil {
		t.Fatalf("totals bricked by a rejected final push: %v", err)
	}
	if !bytes.Equal(marshal(t, before), marshal(t, after)) {
		t.Errorf("rejected final push changed totals\n before: %s\n after:  %s", marshal(t, before), marshal(t, after))
	}
	st := head.Stats()
	if st.Pushes != 1 || st.FinalPushes != 0 {
		t.Errorf("pushes=%d finals=%d after a rejected final, want 1/0", st.Pushes, st.FinalPushes)
	}
	if st.LiveMembers != 1 {
		t.Errorf("live members = %d, want 1 (rejected final must not retire the epoch)", st.LiveMembers)
	}
	if st.Rejects[ErrBadSnapshot] != 1 {
		t.Errorf("rejects = %v, want one bad_snapshot", st.Rejects)
	}

	// The epoch is fully usable: the same seq retries with a good
	// payload, and a good final retires cleanly.
	if resp := head.Push(miniSnap("m", reg.Epoch, 2, 150)); !resp.OK {
		t.Fatalf("retry after rejected payload: %+v", resp)
	}
	good := miniSnap("m", reg.Epoch, 3, 160)
	good.Final = true
	if resp := head.Push(good); !resp.OK {
		t.Fatalf("good final: %+v", resp)
	}
	tot, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Ingested != 160 || tot.Epochs != 1 {
		t.Errorf("totals = ingested %d over %d epochs, want 160 over 1", tot.Ingested, tot.Epochs)
	}
}

// TestRetiredEpochCompaction pins that dead epochs fold into the
// compacted running total instead of accumulating forever — a flapping
// member must not grow head memory or per-push merge cost without
// bound — and that compaction changes no bits: the head's totals stay
// byte-identical to a from-scratch Aggregate over every epoch's last
// snapshot.
func TestRetiredEpochCompaction(t *testing.T) {
	head := NewHead(HeadConfig{})
	const cycles = 50
	var all []Snapshot
	for i := 0; i < cycles; i++ {
		reg, err := head.Register(RegisterRequest{Version: WireVersion, MemberID: "flappy"})
		if err != nil {
			t.Fatal(err)
		}
		s := miniSnap("flappy", reg.Epoch, 1, 10)
		s.Final = i%2 == 1 // retire half by final push, half by re-registration
		if resp := head.Push(s); !resp.OK {
			t.Fatalf("cycle %d push: %+v", i, resp)
		}
		all = append(all, *s)
	}
	head.mu.Lock()
	pending := len(head.retired)
	folded := head.compacted.t.Epochs
	head.mu.Unlock()
	if pending != 0 {
		t.Errorf("retired backlog = %d snapshots, want 0 (a single flapping member compacts fully)", pending)
	}
	if folded != cycles {
		t.Errorf("compacted epochs = %d, want %d", folded, cycles)
	}
	got, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Aggregate(all...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, got), marshal(t, want)) {
		t.Errorf("compacted totals diverged from full aggregate\n head: %s\n sum:  %s", marshal(t, got), marshal(t, want))
	}
}

// TestAggregateEmptyMatchesIdleHead pins that a head that has heard
// nothing and an Aggregate over nothing render identical totals.
func TestAggregateEmptyMatchesIdleHead(t *testing.T) {
	head := NewHead(HeadConfig{})
	got, err := head.Totals()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, got), marshal(t, want)) {
		t.Errorf("idle head totals %s != empty aggregate %s", marshal(t, got), marshal(t, want))
	}
}
