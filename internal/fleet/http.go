package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// NewHandler exposes the head's control and observation planes:
//
//	POST /fleet/register       member registration → epoch assignment
//	POST /fleet/push           member snapshot push (doubles as heartbeat)
//	GET  /fleet/members        every known member, live and dead
//	GET  /fleet/stalls         fleet-wide stall totals, cumulative + window (?service=)
//	GET  /fleet/services       per-service rollup of the same
//	GET  /fleet/stats          the head's own protocol accounting
//	GET  /fleet/timeseries     per-interval delta rings: fleet, services, members (?service=)
//	GET  /fleet/events         event ring backlog (?since=ID)
//	GET  /fleet/events/stream  the same as live SSE (?since= / Last-Event-ID)
//	GET  /fleet/config         the current config downlink
//	POST /fleet/config         merge settings into the downlink, bump version
//	GET  /dashboard            embedded operator dashboard (self-contained HTML)
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              liveness
//
// Every response carries Cache-Control: no-store — the head is a live
// view; a cached copy of any of it is wrong by definition.
func NewHandler(h *Head) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := h.Register(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /fleet/push", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSnapshotBytes+1))
		if err != nil {
			http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > maxSnapshotBytes {
			http.Error(w, "snapshot exceeds the 8 MiB limit", http.StatusRequestEntityTooLarge)
			return
		}
		var snap Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			writeJSON(w, PushResponse{OK: false, Error: ErrBadSnapshot})
			return
		}
		resp := h.Push(&snap)
		if resp.OK {
			h.AddSnapshotBytes(len(body))
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /fleet/members", func(w http.ResponseWriter, r *http.Request) {
		members := h.Members()
		writeJSON(w, map[string]any{"count": len(members), "members": members})
	})
	mux.HandleFunc("GET /fleet/stalls", func(w http.ResponseWriter, r *http.Request) {
		totals, err := h.Totals()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		win := h.Window()
		if svc := r.URL.Query().Get("service"); svc != "" {
			cum := filterStalls(totals.Stalls, svc)
			wst := filterStalls(win.Stalls, svc)
			if len(cum) == 0 && len(wst) == 0 {
				http.Error(w, fmt.Sprintf("unknown service %q", svc), http.StatusBadRequest)
				return
			}
			writeJSON(w, map[string]any{"service": svc, "stalls": cum, "window_stalls": wst})
			return
		}
		writeJSON(w, map[string]any{"totals": totals, "window": win})
	})
	mux.HandleFunc("GET /fleet/services", func(w http.ResponseWriter, r *http.Request) {
		totals, err := h.Totals()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		rows := serviceRows(totals, h.Window())
		writeJSON(w, map[string]any{"count": len(rows), "services": rows})
	})
	mux.HandleFunc("GET /fleet/config", func(w http.ResponseWriter, r *http.Request) {
		cu := h.ConfigSnapshot()
		if cu == nil {
			writeJSON(w, map[string]any{"version": 0})
			return
		}
		writeJSON(w, cu)
	})
	mux.HandleFunc("POST /fleet/config", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Settings map[string]any `json:"settings"`
		}
		if !readJSON(w, r, &req) {
			return
		}
		if len(req.Settings) == 0 {
			http.Error(w, `empty update: body must be {"settings": {...}}`, http.StatusBadRequest)
			return
		}
		v := h.SetConfig(req.Settings)
		writeJSON(w, map[string]any{"version": v})
	})
	mux.HandleFunc("GET /fleet/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, h.Stats())
	})
	mux.HandleFunc("GET /fleet/timeseries", func(w http.ResponseWriter, r *http.Request) {
		svc := r.URL.Query().Get("service")
		resp, ok := h.TimeSeries(svc)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown service %q", svc), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /fleet/events", func(w http.ResponseWriter, r *http.Request) {
		since, ok := sinceParam(w, r)
		if !ok {
			return
		}
		writeJSON(w, h.Events(since))
	})
	mux.HandleFunc("GET /fleet/events/stream", func(w http.ResponseWriter, r *http.Request) {
		serveEventStream(h, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		totals, err := h.Totals()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		writeMetrics(w, h.Stats(), totals, h.Window())
	})
	mux.HandleFunc("GET /dashboard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		w.Write(dashboardHTML)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// filterStalls keeps the cells of one service.
func filterStalls(cells []StallCounter, svc string) []StallCounter {
	var out []StallCounter
	for _, sc := range cells {
		if sc.Service == svc {
			out = append(out, sc)
		}
	}
	return out
}

// sinceParam parses ?since= (an event ID; Last-Event-ID wins when an
// SSE client reconnects with it). Absent means 0 — everything
// retained. A non-numeric value 400s, mirroring the ?n= guard on the
// tapod endpoints.
func sinceParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("since")
	}
	if raw == "" {
		return 0, true
	}
	since, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad since=%q: %v", raw, err), http.StatusBadRequest)
		return 0, false
	}
	return since, true
}

// sseKeepalive is how often an idle stream writes an SSE comment so
// intermediaries do not reap the connection.
const sseKeepalive = 15 * time.Second

// serveEventStream is the SSE side of the event ring: backlog first,
// then live events as they publish, until the client hangs up or the
// head closes. Writes id: lines so a dropped client reconnects with
// Last-Event-ID and misses nothing still retained.
func serveEventStream(h *Head, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	since, ok := sinceParam(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: with an empty backlog nothing else would,
	// and the client's request blocks until they arrive.
	fl.Flush()
	backlog, ch, cancel := h.events.subscribe(since)
	defer cancel()
	write := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.ID, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range backlog {
		if !write(ev) {
			return
		}
	}
	ka := time.NewTicker(sseKeepalive)
	defer ka.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-h.events.closed:
			return
		case <-ka.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev := <-ch:
			if !write(ev) {
				return
			}
		}
	}
}

// maxSnapshotBytes bounds a push body. A snapshot is a few KiB of
// counters; 8 MiB is far past any legitimate fleet and cheap to hold.
const maxSnapshotBytes = 8 << 20

// serviceRow is one row of the /fleet/services rollup.
type serviceRow struct {
	Service            string  `json:"service"`
	Stalls             uint64  `json:"stalls"`
	StallSeconds       float64 `json:"stall_seconds"`
	WindowStalls       uint64  `json:"window_stalls"`
	WindowStallSeconds float64 `json:"window_stall_seconds"`
	// TopCause is the cumulative plurality cause — the first thing an
	// operator wants per service (ties break alphabetically).
	TopCause string `json:"top_cause,omitempty"`
}

// serviceRows collapses the cause dimension into a per-service view.
func serviceRows(t Totals, w WindowTotals) []serviceRow {
	bySvc := map[string]*serviceRow{}
	topCount := map[string]uint64{}
	row := func(svc string) *serviceRow {
		r := bySvc[svc]
		if r == nil {
			r = &serviceRow{Service: svc}
			bySvc[svc] = r
		}
		return r
	}
	for _, sc := range t.Stalls {
		r := row(sc.Service)
		r.Stalls += sc.Count
		r.StallSeconds += sc.Seconds
		if sc.Count > topCount[sc.Service] {
			topCount[sc.Service] = sc.Count
			r.TopCause = sc.Cause
		}
	}
	for _, sc := range w.Stalls {
		r := row(sc.Service)
		r.WindowStalls += sc.Count
		r.WindowStallSeconds += sc.Seconds
	}
	out := make([]serviceRow, 0, len(bySvc))
	for _, r := range bySvc {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// readJSON decodes a request body, bounding it and rejecting trailing
// garbage; on failure it writes a 400 and reports false.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeMetrics renders the head's fleet-wide state in the Prometheus
// text exposition format, hand-rolled like the tapod exporter so the
// head stays dependency-free. Label sets are sorted for deterministic
// scrapes.
func writeMetrics(w io.Writer, st HeadStats, t Totals, win WindowTotals) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP tapoctl_members Members ever registered.\n")
	p("# TYPE tapoctl_members gauge\n")
	p("tapoctl_members %d\n", st.Members)

	p("# HELP tapoctl_live_members Members with a live (unretired) epoch.\n")
	p("# TYPE tapoctl_live_members gauge\n")
	p("tapoctl_live_members %d\n", st.LiveMembers)

	p("# HELP tapoctl_registrations_total Epoch assignments, including restarts.\n")
	p("# TYPE tapoctl_registrations_total counter\n")
	p("tapoctl_registrations_total %d\n", st.Registrations)

	p("# HELP tapoctl_member_restarts_total Re-registrations of a known member.\n")
	p("# TYPE tapoctl_member_restarts_total counter\n")
	p("tapoctl_member_restarts_total %d\n", st.Restarts)

	p("# HELP tapoctl_member_expiries_total Epochs retired for going silent.\n")
	p("# TYPE tapoctl_member_expiries_total counter\n")
	p("tapoctl_member_expiries_total %d\n", st.Expiries)

	p("# HELP tapoctl_pushes_total Snapshot pushes accepted.\n")
	p("# TYPE tapoctl_pushes_total counter\n")
	p("tapoctl_pushes_total %d\n", st.Pushes)

	p("# HELP tapoctl_final_pushes_total Accepted pushes that retired their epoch.\n")
	p("# TYPE tapoctl_final_pushes_total counter\n")
	p("tapoctl_final_pushes_total %d\n", st.FinalPushes)

	p("# HELP tapoctl_push_rejects_total Rejected pushes, by reason.\n")
	p("# TYPE tapoctl_push_rejects_total counter\n")
	for _, reason := range sortedKeys(st.Rejects) {
		p("tapoctl_push_rejects_total{reason=%q} %d\n", reason, st.Rejects[reason])
	}

	p("# HELP tapoctl_snapshot_bytes_total Wire bytes of accepted snapshots.\n")
	p("# TYPE tapoctl_snapshot_bytes_total counter\n")
	p("tapoctl_snapshot_bytes_total %d\n", st.SnapshotBytes)

	p("# HELP tapoctl_merge_latency_ms Totals-rebuild latency per accepted push.\n")
	p("# TYPE tapoctl_merge_latency_ms summary\n")
	p("tapoctl_merge_latency_ms{quantile=\"0.5\"} %s\n", fnum(st.MergeP50MS))
	p("tapoctl_merge_latency_ms{quantile=\"0.99\"} %s\n", fnum(st.MergeP99MS))
	p("tapoctl_merge_latency_ms_count %d\n", st.MergeCount)

	p("# HELP fleet_epochs_total Epochs folded into the fleet totals.\n")
	p("# TYPE fleet_epochs_total counter\n")
	p("fleet_epochs_total %d\n", t.Epochs)

	p("# HELP fleet_records_ingested_total Records accepted across the fleet.\n")
	p("# TYPE fleet_records_ingested_total counter\n")
	p("fleet_records_ingested_total %d\n", t.Ingested)

	p("# HELP fleet_records_dropped_total Records discarded across the fleet, by reason.\n")
	p("# TYPE fleet_records_dropped_total counter\n")
	p("fleet_records_dropped_total{reason=%q} %d\n", "ring_full", t.RingDrops)
	p("fleet_records_dropped_total{reason=%q} %d\n", "flow_record_cap", t.RecordCapDrops)
	p("fleet_records_dropped_total{reason=%q} %d\n", "sampled_out", t.SampledOut)

	p("# HELP fleet_records_fed_total Records fed into analyzers across the fleet.\n")
	p("# TYPE fleet_records_fed_total counter\n")
	p("fleet_records_fed_total %d\n", t.RecordsFed)

	p("# HELP fleet_triage_records_total Records handled by triage fast paths across the fleet.\n")
	p("# TYPE fleet_triage_records_total counter\n")
	p("fleet_triage_records_total %d\n", t.TriageFastRecords)

	p("# HELP fleet_flows_seen_total Flows admitted across the fleet.\n")
	p("# TYPE fleet_flows_seen_total counter\n")
	p("fleet_flows_seen_total %d\n", t.FlowsSeen)

	p("# HELP fleet_flows_evicted_total Flows evicted across the fleet, by reason.\n")
	p("# TYPE fleet_flows_evicted_total counter\n")
	for _, reason := range sortedKeys(t.FlowsEvicted) {
		p("fleet_flows_evicted_total{reason=%q} %d\n", reason, t.FlowsEvicted[reason])
	}

	p("# HELP fleet_unknown_config_keys_total Config keys members did not understand.\n")
	p("# TYPE fleet_unknown_config_keys_total counter\n")
	p("fleet_unknown_config_keys_total %d\n", t.UnknownConfigKeys)

	p("# HELP fleet_stalls_total Closed stalls across the fleet, by service and cause.\n")
	p("# TYPE fleet_stalls_total counter\n")
	for _, sc := range t.Stalls {
		p("fleet_stalls_total{service=%q,cause=%q} %d\n", sc.Service, sc.Cause, sc.Count)
	}

	p("# HELP fleet_stall_seconds_total Stalled seconds across the fleet, by service and cause.\n")
	p("# TYPE fleet_stall_seconds_total counter\n")
	for _, sc := range t.Stalls {
		p("fleet_stall_seconds_total{service=%q,cause=%q} %s\n", sc.Service, sc.Cause, fnum(sc.Seconds))
	}

	p("# HELP fleet_retrans_stalls_total Retransmission stalls across the fleet, by Table-5 sub-cause.\n")
	p("# TYPE fleet_retrans_stalls_total counter\n")
	for _, rc := range t.Retrans {
		p("fleet_retrans_stalls_total{subcause=%q} %d\n", rc.Subcause, rc.Count)
	}

	p("# HELP fleet_stall_duration_ms Closed stall durations across the fleet, in milliseconds.\n")
	p("# TYPE fleet_stall_duration_ms histogram\n")
	var cum uint64
	for i, ub := range t.DurationsMS.Bounds {
		cum += t.DurationsMS.Counts[i]
		p("fleet_stall_duration_ms_bucket{le=%q} %d\n", fnum(ub), cum)
	}
	var n uint64
	for _, c := range t.DurationsMS.Counts {
		n += c
	}
	p("fleet_stall_duration_ms_bucket{le=\"+Inf\"} %d\n", n)
	p("fleet_stall_duration_ms_sum %s\n", fnum(t.DurationsMS.Sum))
	p("fleet_stall_duration_ms_count %d\n", n)

	p("# HELP fleet_window_stalls Stalls inside the rolling window across live members.\n")
	p("# TYPE fleet_window_stalls gauge\n")
	for _, sc := range win.Stalls {
		p("fleet_window_stalls{service=%q,cause=%q} %d\n", sc.Service, sc.Cause, sc.Count)
	}

	p("# HELP fleet_window_span_seconds Width of the rolling window.\n")
	p("# TYPE fleet_window_span_seconds gauge\n")
	p("fleet_window_span_seconds %s\n", fnum(win.SpanS))
}

// fnum formats a float the way Prometheus clients do: shortest
// round-trip representation.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
