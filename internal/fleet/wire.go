// Package fleet is the aggregation tier above the per-host monitor:
// many tapod members, one tapoctl head. Members periodically snapshot
// their rolling-window state — per-service stall counters, mergeable
// histograms and summaries, triage and eviction accounting — into a
// versioned wire Snapshot and push it to the head over HTTP. The head
// merges snapshots into fleet-wide state and pushes config back down
// in the heartbeat (push) responses.
//
// Protocol invariants:
//
//   - Snapshots carry CUMULATIVE counters since the member epoch
//     started, and the head stores only the latest snapshot per
//     epoch (replace, never add). A delayed duplicate or a lost push
//     therefore never double-counts or leaks: the next push heals
//     everything.
//   - The head assigns each registration a fresh, globally monotonic
//     epoch. A restarted member re-registers, gets a new epoch, and
//     the head retires the old epoch's last snapshot into a frozen
//     total — pushes still in flight from the dead epoch are
//     rejected as stale.
//   - Sequence numbers are per-epoch and strictly increasing; the
//     head discards any push whose seq does not advance.
//
// Fleet-wide totals are then: retired-epoch totals + the latest
// snapshot of every live epoch. Aggregate implements exactly that
// merge, and the differential test pins that the head's totals after
// arbitrary protocol churn (restarts, duplicates, reordering) are
// byte-identical to a direct merge of the members' final reports.
package fleet

import (
	"sort"

	"tcpstall/internal/live"
	"tcpstall/internal/stats"
)

// WireVersion is the snapshot schema version. The head rejects
// snapshots whose version it does not speak; bumping this is the
// signal that a field changed meaning (adding fields is not a bump —
// unknown JSON fields are ignored on both sides).
const WireVersion = 1

// Snapshot is one member's cumulative state as pushed to the head.
type Snapshot struct {
	Version  int    `json:"version"`
	MemberID string `json:"member_id"`
	// Epoch is the head-assigned incarnation of this member; Seq
	// increases by one per push within the epoch.
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	// Final marks the member's last push before shutdown: the state is
	// settled (every flow flushed), so the head may retire the epoch
	// without waiting for expiry.
	Final bool `json:"final,omitempty"`
	// ConfigVersion is the head config version the member has applied,
	// so the head can tell which members have converged.
	ConfigVersion uint64 `json:"config_version"`

	ActiveFlows       int               `json:"active_flows"`
	Ingested          uint64            `json:"records_ingested"`
	RingDrops         uint64            `json:"ring_drops"`
	RecordsFed        uint64            `json:"records_fed"`
	RecordCapDrops    uint64            `json:"record_cap_drops"`
	SampledOut        uint64            `json:"records_sampled_out"`
	FlowsSeen         uint64            `json:"flows_seen"`
	FlowsEvicted      map[string]uint64 `json:"flows_evicted,omitempty"`
	FlowsTruncated    uint64            `json:"flows_truncated"`
	UnknownConfigKeys uint64            `json:"unknown_config_keys"`

	PromotedFlows             int               `json:"promoted_flows"`
	ParkedFlows               int               `json:"parked_flows"`
	TriageFastRecords         uint64            `json:"triage_fast_records"`
	TriagePromotions          map[string]uint64 `json:"triage_promotions,omitempty"`
	TriageRepromotions        uint64            `json:"triage_repromotions"`
	TriageDemotions           uint64            `json:"triage_demotions"`
	TriageTruncatedPromotions uint64            `json:"triage_truncated_promotions"`

	// Stalls and Retrans are sorted by (service, cause) and subcause
	// respectively — composite keys cannot be JSON map keys, and the
	// sorted slice keeps the encoding canonical.
	Stalls      []StallCounter       `json:"stalls,omitempty"`
	Retrans     []RetransCounter     `json:"retrans,omitempty"`
	DurationsMS stats.HistogramState `json:"stall_duration_ms"`

	// IngestBatchSizes summarizes the member's post-sampling ingest
	// batch sizes — a fleet-wide view of batching health.
	IngestBatchSizes stats.SummaryState `json:"ingest_batch_sizes"`

	// The rolling window, for "right now" fleet views. Only live
	// members' windows are summed; retired epochs contribute nothing
	// recent by definition.
	WindowSpanS  float64        `json:"window_span_s"`
	WindowStalls []StallCounter `json:"window_stalls,omitempty"`

	// Events is the bounded, sampled digest of stall events closed
	// since the previous push — at most MaxDigestEvents, first-K
	// sampled, with the overflow counted in EventsDropped. Events feed
	// the head's live event stream only; they never enter Totals (the
	// stall cells above carry the exact counts), so a dropped event is
	// lost visibility, never lost accounting.
	Events        []StallEvent `json:"events,omitempty"`
	EventsDropped uint64       `json:"events_dropped,omitempty"`
}

// MaxDigestEvents bounds the stall-event digest attached to one push,
// on both sides of the wire: members never send more, and the head
// truncates (and counts) anything past it.
const MaxDigestEvents = 256

// StallEvent is one digested stall close, as pushed to the head's
// event stream. FlowHash is the FNV-1a hash of the flow ID — enough
// to correlate a flow's stalls across events without shipping the
// (potentially identifying, unbounded-cardinality) ID itself.
type StallEvent struct {
	TimeMS     int64   `json:"time_ms"`
	Service    string  `json:"service,omitempty"`
	Cause      string  `json:"cause"`
	DurationMS float64 `json:"duration_ms"`
	FlowHash   uint32  `json:"flow_hash"`
}

// StallCounter is one (service, cause) stall cell.
type StallCounter struct {
	Service string  `json:"service"`
	Cause   string  `json:"cause"`
	Count   uint64  `json:"count"`
	Seconds float64 `json:"seconds"`
}

// RetransCounter is one Table-5 retransmission sub-cause cell.
type RetransCounter struct {
	Subcause string  `json:"subcause"`
	Count    uint64  `json:"count"`
	Seconds  float64 `json:"seconds"`
}

// RegisterRequest announces a member (or a restarted incarnation of
// one) to the head.
type RegisterRequest struct {
	Version  int    `json:"version"`
	MemberID string `json:"member_id"`
}

// RegisterResponse assigns the member its epoch and hands down the
// current config, if any has been set.
type RegisterResponse struct {
	Epoch  uint64        `json:"epoch"`
	Config *ConfigUpdate `json:"config,omitempty"`
}

// Push rejection reasons, as they appear in PushResponse.Error and
// the head's metrics labels.
const (
	ErrUnknownMember = "unknown_member" // push before register (or head restarted)
	ErrStaleEpoch    = "stale_epoch"    // a newer incarnation of this member registered
	ErrDuplicateSeq  = "duplicate_seq"  // seq did not advance (delayed duplicate)
	ErrBadSnapshot   = "bad_snapshot"   // malformed or version-incompatible payload
)

// PushResponse doubles as the heartbeat response: acceptance status
// plus the config downlink when the head's config is newer than what
// the member reports applied.
type PushResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Config is present when the member should apply a newer config;
	// members stage it and apply between ingest batches.
	Config *ConfigUpdate `json:"config,omitempty"`
}

// ConfigUpdate is the head→member config downlink. Settings is an
// open key space for forward compatibility: a member applies the keys
// it knows (see the Setting* constants) and counts the ones it does
// not, so a newer head can talk to an older member without breaking
// it.
type ConfigUpdate struct {
	Version  uint64         `json:"version"`
	Settings map[string]any `json:"settings,omitempty"`
}

// The setting keys members understand.
const (
	// SettingSampleOneIn keeps 1 flow in N (flow-granular, by flow-ID
	// hash); 1 or 0 keeps everything.
	SettingSampleOneIn = "sample_one_in"
	// SettingMaxRecordsPerFlow retunes the per-flow analyzer record
	// cap (-1 unlimited, 0 restores the member's configured default).
	SettingMaxRecordsPerFlow = "max_records_per_flow"
	// SettingTriage steers new flows onto ("on"/true) or off
	// ("off"/false) the two-phase fast path.
	SettingTriage = "triage"
	// SettingFlight attaches (true) or withholds (false) flight
	// recorders on new analyzers.
	SettingFlight = "flight"
)

// snapshotOf converts a live monitor snapshot into wire form.
// Identity (member, epoch, seq) and member-level counters (sampling,
// config) are the caller's to fill.
func snapshotOf(s *live.Snapshot) Snapshot {
	out := Snapshot{
		Version:     WireVersion,
		ActiveFlows: s.ActiveFlows,
		Ingested:    s.Ingested,
		RingDrops:   s.RingDrops,
		RecordsFed:  s.RecordsFed,

		RecordCapDrops: s.RecordsCapDrop,
		FlowsSeen:      s.FlowsSeen,
		FlowsTruncated: s.FlowsTruncated,

		PromotedFlows:             s.PromotedFlows,
		ParkedFlows:               s.ParkedFlows,
		TriageFastRecords:         s.TriageFastRecords,
		TriageRepromotions:        s.TriageRepromotions,
		TriageDemotions:           s.TriageDemotions,
		TriageTruncatedPromotions: s.TriageTruncatedPromotions,

		WindowSpanS: s.Window.Span.Seconds(),
	}
	if len(s.FlowsEvicted) > 0 {
		out.FlowsEvicted = make(map[string]uint64, len(s.FlowsEvicted))
		for k, n := range s.FlowsEvicted {
			out.FlowsEvicted[k] = n
		}
	}
	if len(s.TriagePromotions) > 0 {
		out.TriagePromotions = make(map[string]uint64, len(s.TriagePromotions))
		for k, n := range s.TriagePromotions {
			out.TriagePromotions[k] = n
		}
	}
	out.Stalls = stallCounters(s.StallCount, s.StallSeconds)
	out.WindowStalls = stallCounters(s.Window.StallCount, s.Window.StallSeconds)
	for c, n := range s.RetransCount {
		out.Retrans = append(out.Retrans, RetransCounter{
			Subcause: c.String(),
			Count:    n,
			Seconds:  s.RetransSeconds[c],
		})
	}
	sort.Slice(out.Retrans, func(i, j int) bool { return out.Retrans[i].Subcause < out.Retrans[j].Subcause })
	if s.DurationsMS != nil {
		out.DurationsMS = s.DurationsMS.State()
	} else {
		out.DurationsMS = stats.NewHistogram(live.DurationBoundsMS).State()
	}
	return out
}

// stallCounters flattens cause-keyed maps into the canonical sorted
// slice form.
func stallCounters(count map[live.CauseKey]uint64, secs map[live.CauseKey]float64) []StallCounter {
	if len(count) == 0 {
		return nil
	}
	out := make([]StallCounter, 0, len(count))
	for k, n := range count {
		out = append(out, StallCounter{
			Service: k.Service,
			Cause:   k.Cause.String(),
			Count:   n,
			Seconds: secs[k],
		})
	}
	sortStalls(out)
	return out
}

func sortStalls(s []StallCounter) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Service != s[j].Service {
			return s[i].Service < s[j].Service
		}
		return s[i].Cause < s[j].Cause
	})
}
