package fleet

import _ "embed"

// The operator dashboard is one self-contained HTML page, compiled
// into the head binary. No build step, no external assets, no CDN:
// everything it renders comes from the head's own JSON endpoints
// (/fleet/members, /fleet/timeseries, /fleet/services, /fleet/config,
// /metrics via /fleet/* equivalents) and the SSE event stream, so the
// page works on an air-gapped host and cannot rot against a remote
// script. TestDashboardSelfContained pins the no-external-URLs
// property.

//go:embed dashboard.html
var dashboardHTML []byte
