package flight

import (
	"encoding/json"
	"testing"
	"time"

	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

func rec(t sim.Time, dir tcpsim.Dir, seq uint32, length int) *trace.Record {
	return &trace.Record{T: t, Dir: dir, Seg: tcpsim.Segment{Seq: seq, Len: length}}
}

// A nil recorder must accept every call and report empty state — this
// is the disabled fast path the analyzer leans on.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Emit(0, 0, KindState, "x", 1, 2, 3)
	r.Sample(0, rec(0, tcpsim.DirOut, 0, 1))
	r.StallClosed(Ref{"f", 0}, 0, 1, 0, 0, "c", "", "", nil)
	r.Finalize(0, "c", "", "", nil)
	if r.Evidence(0) != nil || r.Evidences() != nil || r.Events() != nil {
		t.Fatal("nil recorder returned data")
	}
	if r.EventDrops() != 0 || r.EvidenceDrops() != 0 {
		t.Fatal("nil recorder counted drops")
	}
	var tr *Trail
	if !tr.Check("rule", true) || tr.Check("rule", false) {
		t.Fatal("nil trail altered predicate value")
	}
	tr.Note("note")
}

// The event ring must overwrite oldest-first and account for every
// overwritten event.
func TestEventRingTruncationAccounting(t *testing.T) {
	r := NewRecorder(Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		r.Emit(i, sim.Time(i), KindSeg, "send", int64(i), 0, 0)
	}
	if got := r.EventDrops(); got != 6 {
		t.Fatalf("EventDrops = %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.A != want {
			t.Errorf("ring[%d].A = %d, want %d (oldest-first order)", i, e.A, want)
		}
	}
}

// A stall's window must hold the K records before the gap, the
// closing record, and the K after — truncated cleanly at flow edges.
func TestWindowCapture(t *testing.T) {
	r := NewRecorder(Config{WindowK: 2})
	for i := 0; i < 5; i++ {
		r.Sample(i, rec(sim.Time(i)*sim.Time(time.Second), tcpsim.DirOut, uint32(i*1460), 1460))
	}
	// Stall closed at record 4 (gap between 3 and 4).
	r.StallClosed(Ref{"f", 0}, 3, 4, 3e9, 4e9, "pkt-delay", "", "", nil)
	// Two post-gap records arrive; a third must not extend the window.
	for i := 5; i < 8; i++ {
		r.Sample(i, rec(sim.Time(i)*sim.Time(time.Second), tcpsim.DirIn, 0, 0))
	}
	ev := r.Evidence(0)
	if ev == nil {
		t.Fatal("no evidence stored")
	}
	var idxs []int
	for _, s := range ev.Window {
		idxs = append(idxs, s.Idx)
	}
	want := []int{2, 3, 4, 5, 6}
	if len(idxs) != len(want) {
		t.Fatalf("window indices = %v, want %v", idxs, want)
	}
	for i := range want {
		if idxs[i] != want[i] {
			t.Fatalf("window indices = %v, want %v", idxs, want)
		}
	}

	// A stall right at the start of a short flow keeps what exists.
	r2 := NewRecorder(Config{WindowK: 4})
	r2.Sample(0, rec(0, tcpsim.DirOut, 0, 1460))
	r2.Sample(1, rec(2e9, tcpsim.DirOut, 1460, 1460))
	r2.StallClosed(Ref{"f", 0}, 0, 1, 0, 2e9, "pkt-delay", "", "", nil)
	if n := len(r2.Evidence(0).Window); n != 2 {
		t.Fatalf("short-flow window = %d samples, want 2", n)
	}
}

// The MaxStalls cap must evict oldest evidence and count it.
func TestEvidenceCap(t *testing.T) {
	r := NewRecorder(Config{MaxStalls: 2, WindowK: 1})
	for id := 0; id < 5; id++ {
		r.Sample(id, rec(sim.Time(id), tcpsim.DirOut, 0, 1))
		r.StallClosed(Ref{"f", id}, id, id, 0, 0, "c", "", "", nil)
	}
	if got := r.EvidenceDrops(); got != 3 {
		t.Fatalf("EvidenceDrops = %d, want 3", got)
	}
	if r.Evidence(0) != nil || r.Evidence(2) != nil {
		t.Fatal("evicted evidence still resolvable")
	}
	evs := r.Evidences()
	if len(evs) != 2 || evs[0].Ref.Stall != 3 || evs[1].Ref.Stall != 4 {
		t.Fatalf("retained evidence = %v", evs)
	}
}

// Finalize must replace the provisional decision in place and ignore
// unknown IDs.
func TestFinalizeReplacesProvisional(t *testing.T) {
	r := NewRecorder(Config{})
	r.Sample(0, rec(0, tcpsim.DirOut, 0, 1))
	tr := &Trail{}
	tr.Check("provisional rule", true)
	r.StallClosed(Ref{"f", 0}, 0, 0, 0, 1e9, "retransmission", "small-cwnd", "", tr)
	ev := r.Evidence(0)
	if !ev.Provisional || ev.SubCause != "small-cwnd" {
		t.Fatalf("close-time evidence = %+v", ev)
	}
	tr2 := &Trail{}
	tr2.Check("settled rule", false, V("x", 7), V("dur", 250*time.Millisecond))
	r.Finalize(0, "retransmission", "ack-delay-loss", "", tr2)
	ev = r.Evidence(0)
	if ev.Provisional || ev.SubCause != "ack-delay-loss" || len(ev.Decision) != 1 || ev.Decision[0].Rule != "settled rule" {
		t.Fatalf("finalized evidence = %+v", ev)
	}
	r.Finalize(99, "x", "", "", nil) // unknown: no panic
}

// The JSON view must round-trip through encoding/json and keep the
// label-building helpers coherent.
func TestEvidenceJSON(t *testing.T) {
	r := NewRecorder(Config{WindowK: 1})
	r.Emit(0, 0, KindRTT, "rtt-sample", 1000, 500, 200000)
	r.Sample(0, rec(0, tcpsim.DirOut, 42, 1460))
	tr := &Trail{}
	tr.Check("stall ends with outgoing data", true, V("len", 1460))
	r.StallClosed(Ref{"flow-1", 3}, 0, 0, 0, 5e8, "retransmission", "double-retrans", "t-double", tr)
	ev := r.Evidence(3)
	if got := ev.CauseLabel(); got != "retransmission/double-retrans(t-double)" {
		t.Fatalf("CauseLabel = %q", got)
	}
	b, err := json.Marshal(ev.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var back EvidenceJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ref != (Ref{"flow-1", 3}) || back.Cause != "retransmission" ||
		len(back.Decision) != 1 || len(back.Window) != 1 || len(back.Events) != 1 {
		t.Fatalf("round-trip = %+v", back)
	}
	if back.Window[0].Seq != 42 || back.Events[0].Kind != "rtt" {
		t.Fatalf("round-trip payload = %+v", back)
	}
}
