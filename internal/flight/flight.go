// Package flight is TAPO's per-flow flight recorder: a low-overhead,
// bounded event trace that turns every stall verdict into an
// auditable evidence chain. When a Recorder is attached, the core
// analyzer emits typed events (congestion-state transitions,
// cwnd/ssthresh moves, SRTT/RTO updates, scoreboard edits, stall
// open/close) into a fixed-size ring, and every classified stall is
// stored as an Evidence entry: the Figure-5/Table-5 decision path
// with the concrete variable values that decided each branch, plus
// the ±K packet records around the silent gap (tcptrace-style
// time/sequence samples).
//
// Everything is bounded and accounted: the event ring overwrites its
// oldest entries (counted in EventDrops), the evidence store keeps
// the most recent MaxStalls stalls (older entries counted in
// EvidenceDrops), and a stall's record window holds at most
// 2·WindowK+1 samples. A nil *Recorder is the disabled mode — every
// method is nil-receiver safe, so the analyzer's fast path costs one
// pointer test per emission site.
//
// A Recorder is owned by one flow and is not safe for concurrent
// use; concurrent readers (the live admin plane) must copy under the
// flow owner's lock via Snapshot.
package flight

import (
	"fmt"

	"tcpstall/internal/packet"
	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
	"tcpstall/internal/trace"
)

// Kind tags one recorder event. The A/B/C payload meaning is fixed
// per kind (documented on each constant); values that are times are
// in microseconds, stream positions are offsets relative to the
// flow's first data byte.
type Kind uint8

// Event kinds.
const (
	// KindState: congestion state transition. A=from, B=to
	// (tcpsim.CongState values), C=RTO backoff count.
	KindState Kind = iota
	// KindCwnd: congestion window move. A=cwnd (segments),
	// B=ssthresh (segments), C=RTO µs.
	KindCwnd
	// KindRTT: RTT estimator update. A=SRTT µs, B=RTTVAR µs, C=RTO µs.
	KindRTT
	// KindSeg: scoreboard edit for an outgoing data segment.
	// A=stream offset, B=length, C=transmission count (1=original).
	KindSeg
	// KindSack: selective-ACK processing. A=segments newly marked,
	// B=1 when the record carried a DSACK, C=dupack count.
	KindSack
	// KindAck: cumulative ACK advance. A=new snd_una offset,
	// B=segments newly acked, C=cwnd (segments) after growth.
	KindAck
	// KindStallOpen: the silence that became a stall began after this
	// record. A=gap µs, B=threshold µs = min(τ·SRTT, RTO), C=stall ID.
	KindStallOpen
	// KindStallClose: the stall closed at this record. A=stall ID,
	// B=duration µs, C=0.
	KindStallClose
)

var kindNames = [...]string{
	KindState:      "state",
	KindCwnd:       "cwnd",
	KindRTT:        "rtt",
	KindSeg:        "seg",
	KindSack:       "sack",
	KindAck:        "ack",
	KindStallOpen:  "stall-open",
	KindStallClose: "stall-close",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorder event. Name is always a static string (a
// label chosen at the emission site), so emitting an event never
// allocates.
type Event struct {
	// Idx is the record index (0-based feed order) the event is
	// attributed to.
	Idx  int
	T    sim.Time
	Kind Kind
	Name string
	// A, B, C carry the payload; meaning is per Kind.
	A, B, C int64
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %.6fs %s/%s a=%d b=%d c=%d",
		e.Idx, e.T.Seconds(), e.Kind, e.Name, e.A, e.B, e.C)
}

// RecSample is one packet record captured into a stall's evidence
// window — the raw material of a tcptrace-style time/sequence plot.
type RecSample struct {
	Idx   int
	T     sim.Time
	Dir   tcpsim.Dir
	Seq   uint32
	Ack   uint32
	Len   int
	Wnd   int
	Flags packet.TCPFlags
	Sack  int // SACK blocks carried
}

// sampleOf flattens a trace record.
func sampleOf(idx int, r *trace.Record) RecSample {
	return RecSample{
		Idx:   idx,
		T:     r.T,
		Dir:   r.Dir,
		Seq:   r.Seg.Seq,
		Ack:   r.Seg.Ack,
		Len:   r.Seg.Len,
		Wnd:   r.Seg.Wnd,
		Flags: r.Seg.Flags,
		Sack:  r.Seg.SACK.Len(),
	}
}

// Config sizes a Recorder. The zero value selects the documented
// defaults.
type Config struct {
	// RingSize is the event-ring capacity (default 256). When full,
	// the oldest event is overwritten and counted in EventDrops.
	RingSize int
	// WindowK is how many records are kept on each side of a stall
	// gap (default 8): a stall's window holds up to WindowK records
	// before the gap, the gap-closing record, and WindowK after.
	WindowK int
	// MaxStalls caps retained Evidence entries per flow (default 32).
	// Older entries are discarded first and counted in EvidenceDrops.
	MaxStalls int
}

func (c *Config) defaults() {
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.WindowK <= 0 {
		c.WindowK = 8
	}
	if c.MaxStalls <= 0 {
		c.MaxStalls = 32
	}
}

// Ref names one stall's evidence: flow ID plus the flow-scoped
// monotonic stall ID. It is the stable key shared by live stall
// events, the /stalls and /debug admin planes, groundtruth grading
// and `tapo explain`.
type Ref struct {
	Flow  string `json:"flow"`
	Stall int    `json:"stall"`
}

func (r Ref) String() string { return fmt.Sprintf("%s/stall/%d", r.Flow, r.Stall) }

// Recorder is the per-flow flight recorder. The zero value is not
// usable; construct with NewRecorder. A nil *Recorder is valid and
// records nothing.
type Recorder struct {
	cfg Config

	// events is the bounded ring; total counts events ever emitted,
	// so ring position is total%len and drops = total-len once full.
	// guarded by the owning analyzer's single goroutine (external)
	events []Event
	total  uint64 // guarded by the owning analyzer's single goroutine (external)

	// recent holds the last WindowK+1 record samples (pre-gap
	// context); open lists evidences still awaiting post-gap samples.
	// guarded by the owning analyzer's single goroutine (external)
	recent []RecSample
	open   []*Evidence // guarded by the owning analyzer's single goroutine (external)

	// stalls maps stall ID → evidence; order preserves insertion so
	// the cap evicts oldest-first.
	// guarded by the owning analyzer's single goroutine (external)
	stalls        map[int]*Evidence
	order         []int  // guarded by the owning analyzer's single goroutine (external)
	evidenceDrops uint64 // guarded by the owning analyzer's single goroutine (external)
}

// NewRecorder builds an enabled recorder.
func NewRecorder(cfg Config) *Recorder {
	cfg.defaults()
	return &Recorder{
		cfg:    cfg,
		events: make([]Event, 0, cfg.RingSize),
		recent: make([]RecSample, 0, cfg.WindowK+1),
		stalls: make(map[int]*Evidence),
	}
}

// Enabled reports whether the recorder exists (nil-receiver safe).
func (r *Recorder) Enabled() bool { return r != nil }

// Emit appends one event to the ring, overwriting the oldest when
// full. Nil-receiver safe.
func (r *Recorder) Emit(idx int, t sim.Time, kind Kind, name string, a, b, c int64) {
	if r == nil {
		return
	}
	e := Event{Idx: idx, T: t, Kind: kind, Name: name, A: a, B: b, C: c}
	if len(r.events) < r.cfg.RingSize {
		r.events = append(r.events, e)
	} else {
		r.events[r.total%uint64(r.cfg.RingSize)] = e
	}
	r.total++
}

// Sample feeds one record into the window machinery: it completes
// any open post-gap windows and becomes pre-gap context for the next
// stall. Nil-receiver safe.
func (r *Recorder) Sample(idx int, rec *trace.Record) {
	if r == nil {
		return
	}
	s := sampleOf(idx, rec)
	if len(r.open) > 0 {
		keep := r.open[:0]
		for _, ev := range r.open {
			ev.Window = append(ev.Window, s)
			ev.postWanted--
			if ev.postWanted > 0 {
				keep = append(keep, ev)
			}
		}
		r.open = keep
	}
	if len(r.recent) < cap(r.recent) {
		r.recent = append(r.recent, s)
	} else {
		copy(r.recent, r.recent[1:])
		r.recent[len(r.recent)-1] = s
	}
}

// StallClosed stores the evidence for a freshly closed stall: the
// decision trail walked at close time (provisional for the Table-5
// sub-cause), the pre-gap record window accumulated so far, and the
// current event-drop watermark. The gap-closing record must already
// have been Sampled. Nil-receiver safe.
func (r *Recorder) StallClosed(ref Ref, startIdx, endIdx int, start, end sim.Time, cause, subCause, doubleKind string, tr *Trail) {
	if r == nil {
		return
	}
	ev := &Evidence{
		Ref:         ref,
		StartIdx:    startIdx,
		EndIdx:      endIdx,
		Start:       start,
		End:         end,
		Cause:       cause,
		SubCause:    subCause,
		DoubleKind:  doubleKind,
		Provisional: true,
		Decision:    tr.steps(),
		Window:      append([]RecSample(nil), r.recent...),
		postWanted:  r.cfg.WindowK,
	}
	// Events inside or near the stall: everything currently in the
	// ring whose record index is at or after the window start.
	lo := startIdx - r.cfg.WindowK
	for _, e := range r.ringOrdered() {
		if e.Idx >= lo {
			ev.Events = append(ev.Events, e)
		}
	}
	ev.EventDrops = r.EventDrops()
	r.stalls[ref.Stall] = ev
	r.order = append(r.order, ref.Stall)
	r.open = append(r.open, ev)
	for len(r.order) > r.cfg.MaxStalls {
		victim := r.order[0]
		r.order = r.order[1:]
		if old := r.stalls[victim]; old != nil {
			delete(r.stalls, victim)
			r.evidenceDrops++
			for i, o := range r.open {
				if o == old {
					r.open = append(r.open[:i], r.open[i+1:]...)
					break
				}
			}
		}
	}
}

// Finalize replaces a stall's decision trail and causes with the
// settled, post-hoc classification (DSACK horizon, final response
// bounds). Unknown IDs — evidence already evicted — are ignored.
// Nil-receiver safe.
func (r *Recorder) Finalize(stallID int, cause, subCause, doubleKind string, tr *Trail) {
	if r == nil {
		return
	}
	ev := r.stalls[stallID]
	if ev == nil {
		return
	}
	ev.Cause = cause
	ev.SubCause = subCause
	ev.DoubleKind = doubleKind
	ev.Decision = tr.steps()
	ev.Provisional = false
}

// Evidence returns the stored evidence for one stall ID, or nil when
// the stall is unknown or was evicted by the MaxStalls cap.
// Nil-receiver safe.
func (r *Recorder) Evidence(stallID int) *Evidence {
	if r == nil {
		return nil
	}
	return r.stalls[stallID]
}

// Evidences lists retained evidence entries in stall-ID order.
// Nil-receiver safe.
func (r *Recorder) Evidences() []*Evidence {
	if r == nil {
		return nil
	}
	out := make([]*Evidence, 0, len(r.order))
	for _, id := range r.order {
		if ev := r.stalls[id]; ev != nil {
			out = append(out, ev)
		}
	}
	return out
}

// ringOrdered returns the ring contents oldest-first.
func (r *Recorder) ringOrdered() []Event {
	if r.total <= uint64(len(r.events)) {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	start := r.total % uint64(r.cfg.RingSize)
	for i := 0; i < len(r.events); i++ {
		out = append(out, r.events[(start+uint64(i))%uint64(r.cfg.RingSize)])
	}
	return out
}

// Events returns the event ring oldest-first (a copy).
// Nil-receiver safe.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return append([]Event(nil), r.ringOrdered()...)
}

// EventDrops reports how many events the ring has overwritten.
// Nil-receiver safe.
func (r *Recorder) EventDrops() uint64 {
	if r == nil {
		return 0
	}
	if r.total <= uint64(len(r.events)) {
		return 0
	}
	return r.total - uint64(len(r.events))
}

// EvidenceDrops reports how many evidence entries the MaxStalls cap
// discarded. Nil-receiver safe.
func (r *Recorder) EvidenceDrops() uint64 {
	if r == nil {
		return 0
	}
	return r.evidenceDrops
}

// Config reports the (defaulted) configuration; the zero Config for
// a nil recorder.
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}
	}
	return r.cfg
}
