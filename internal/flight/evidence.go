package flight

import (
	"fmt"
	"strings"
	"time"

	"tcpstall/internal/sim"
	"tcpstall/internal/tcpsim"
)

// KV is one named variable value backing a branch test, e.g.
// {"rwnd", "64240"}. Values are pre-rendered strings so a BranchStep
// is self-contained.
type KV struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// V renders a value into a KV. It accepts the handful of types the
// classifier deals in.
func V(key string, val any) KV {
	switch x := val.(type) {
	case string:
		return KV{key, x}
	case bool:
		if x {
			return KV{key, "true"}
		}
		return KV{key, "false"}
	case time.Duration:
		return KV{key, x.String()}
	case sim.Time:
		return KV{key, fmt.Sprintf("%.6fs", x.Seconds())}
	case tcpsim.CongState:
		return KV{key, x.String()}
	default:
		return KV{key, fmt.Sprint(val)}
	}
}

// BranchStep is one predicate of the Figure-5 / Table-5 walk: the
// rule as the tree states it, whether it held, and the concrete
// variable values (with record indices where relevant) that decided
// it.
type BranchStep struct {
	Rule  string `json:"rule"`
	Taken bool   `json:"taken"`
	Vars  []KV   `json:"vars,omitempty"`
}

func (s BranchStep) String() string {
	verdict := "no"
	if s.Taken {
		verdict = "YES"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %-3s", s.Rule, verdict)
	for _, kv := range s.Vars {
		fmt.Fprintf(&b, "  %s=%s", kv.Key, kv.Val)
	}
	return b.String()
}

// Trail accumulates the branch steps of one classification walk. A
// nil *Trail records nothing, so the classifier can thread one
// unconditionally:
//
//	if tr.Check("rwnd == 0 at stall start", rwnd == 0, flight.V("rwnd", rwnd)) {
//		return CauseZeroWindow
//	}
//
// Check returns its predicate unchanged, keeping control flow
// identical whether or not a trail is attached.
type Trail struct {
	Steps []BranchStep
}

// Check records one branch test and returns taken.
func (t *Trail) Check(rule string, taken bool, vars ...KV) bool {
	if t != nil {
		t.Steps = append(t.Steps, BranchStep{Rule: rule, Taken: taken, Vars: vars})
	}
	return taken
}

// Note records an unconditional step (a conclusion or context line).
func (t *Trail) Note(rule string, vars ...KV) {
	if t != nil {
		t.Steps = append(t.Steps, BranchStep{Rule: rule, Taken: true, Vars: vars})
	}
}

// steps returns the recorded steps (nil-safe).
func (t *Trail) steps() []BranchStep {
	if t == nil {
		return nil
	}
	return t.Steps
}

// Evidence is one stall's complete audit record: identity, bounds,
// verdict, the decision path that produced the verdict, the ±K
// record window around the silent gap, and the nearby recorder
// events.
type Evidence struct {
	Ref Ref

	// StartIdx/EndIdx index the records bounding the gap: the last
	// record before the silence and the record that ended it.
	StartIdx int
	EndIdx   int
	Start    sim.Time
	End      sim.Time

	// Cause is the Figure-5 verdict; SubCause the Table-5
	// retransmission sub-cause ("" otherwise); DoubleKind the Table-6
	// split for double retransmissions.
	Cause      string
	SubCause   string
	DoubleKind string
	// Provisional is true until Finalize replaces the close-time
	// classification with the settled one.
	Provisional bool

	// Decision is the branch-by-branch classification walk.
	Decision []BranchStep
	// Window holds the records around the gap: up to WindowK before,
	// the closing record, and up to WindowK after.
	Window []RecSample
	// Events are the ring events near the stall, oldest first.
	Events []Event
	// EventDrops is the ring's overwrite count when the evidence was
	// captured — non-zero means earlier events of this flow are gone.
	EventDrops uint64

	// postWanted counts the post-gap samples still to capture.
	postWanted int
}

// Duration is End − Start.
func (e *Evidence) Duration() time.Duration { return e.End.Sub(e.Start) }

// CauseLabel joins cause, sub-cause and double kind the way reports
// print them (e.g. "retransmission/double-retrans(t-double)").
func (e *Evidence) CauseLabel() string {
	s := e.Cause
	if e.SubCause != "" {
		s += "/" + e.SubCause
		if e.DoubleKind != "" && e.DoubleKind != "none" {
			s += "(" + e.DoubleKind + ")"
		}
	}
	return s
}

// EvidenceJSON is the wire form of an Evidence for the admin plane
// and JSONL exports.
type EvidenceJSON struct {
	Ref         Ref          `json:"ref"`
	StartIdx    int          `json:"start_idx"`
	EndIdx      int          `json:"end_idx"`
	StartS      float64      `json:"start_s"`
	EndS        float64      `json:"end_s"`
	DurationMS  float64      `json:"duration_ms"`
	Cause       string       `json:"cause"`
	SubCause    string       `json:"sub_cause,omitempty"`
	DoubleKind  string       `json:"double_kind,omitempty"`
	Provisional bool         `json:"provisional,omitempty"`
	Decision    []BranchStep `json:"decision"`
	Window      []SampleJSON `json:"window"`
	Events      []EventJSON  `json:"events,omitempty"`
	EventDrops  uint64       `json:"event_drops,omitempty"`
}

// SampleJSON is the wire form of a RecSample.
type SampleJSON struct {
	Idx   int     `json:"idx"`
	TS    float64 `json:"t_s"`
	Dir   string  `json:"dir"`
	Seq   uint32  `json:"seq"`
	Ack   uint32  `json:"ack"`
	Len   int     `json:"len"`
	Wnd   int     `json:"rwnd"`
	Flags string  `json:"flags"`
	Sack  int     `json:"sack_blocks,omitempty"`
}

// EventJSON is the wire form of an Event.
type EventJSON struct {
	Idx  int     `json:"idx"`
	TS   float64 `json:"t_s"`
	Kind string  `json:"kind"`
	Name string  `json:"name"`
	A    int64   `json:"a"`
	B    int64   `json:"b"`
	C    int64   `json:"c"`
}

// JSON converts a sample.
func (s RecSample) JSON() SampleJSON {
	return SampleJSON{
		Idx:   s.Idx,
		TS:    s.T.Seconds(),
		Dir:   s.Dir.String(),
		Seq:   s.Seq,
		Ack:   s.Ack,
		Len:   s.Len,
		Wnd:   s.Wnd,
		Flags: s.Flags.String(),
		Sack:  s.Sack,
	}
}

// JSON converts an event.
func (e Event) JSON() EventJSON {
	return EventJSON{
		Idx:  e.Idx,
		TS:   e.T.Seconds(),
		Kind: e.Kind.String(),
		Name: e.Name,
		A:    e.A,
		B:    e.B,
		C:    e.C,
	}
}

// JSON converts the evidence (deep copy; safe to marshal after the
// flow lock is released).
func (e *Evidence) JSON() EvidenceJSON {
	out := EvidenceJSON{
		Ref:         e.Ref,
		StartIdx:    e.StartIdx,
		EndIdx:      e.EndIdx,
		StartS:      e.Start.Seconds(),
		EndS:        e.End.Seconds(),
		DurationMS:  float64(e.Duration()) / float64(time.Millisecond),
		Cause:       e.Cause,
		SubCause:    e.SubCause,
		DoubleKind:  e.DoubleKind,
		Provisional: e.Provisional,
		EventDrops:  e.EventDrops,
	}
	out.Decision = make([]BranchStep, len(e.Decision))
	for i, s := range e.Decision {
		out.Decision[i] = BranchStep{Rule: s.Rule, Taken: s.Taken, Vars: append([]KV(nil), s.Vars...)}
	}
	out.Window = make([]SampleJSON, 0, len(e.Window))
	for _, s := range e.Window {
		out.Window = append(out.Window, s.JSON())
	}
	if len(e.Events) > 0 {
		out.Events = make([]EventJSON, 0, len(e.Events))
		for _, ev := range e.Events {
			out.Events = append(out.Events, ev.JSON())
		}
	}
	return out
}
